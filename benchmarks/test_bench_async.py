"""Asyncio-backend benches: idle density, wakeup latency, throughput.

The tentpole claim of the asyncio reactor backend (DESIGN.md decision
14) is *density*: every reference's logical event loop is a plain
callback chain on one shared event loop, so an idle reference costs a
few slotted objects -- no thread, no stack, no per-reference waiter
state -- and 100,000 of them fit in one process at near-zero
steady-state CPU.

Three measurements, merged into ``BENCH_async.json``:

* idle density -- the paper-literal thread-per-reference mode first
  (one OS thread each; its stack dwarfs the reference), then 100k
  references on one ``Reactor(mode="asyncio")``: middleware RSS per
  idle reference in each mode (tags are built before the baseline
  snapshot, so the simulated tag's own memory -- physics, not
  middleware -- is excluded), plus idle CPU once every reference holds
  a parked pending write whose deadline sits on the reactor's timer
  heap (a single armed ``call_later``, however many deadlines park);
* wakeup latency -- p50/p99 lag between a ``schedule_at`` deadline and
  the step actually running, per backend, under a realtime clock;
* throughput -- a write+read per reference across in-field references,
  asyncio backend vs the default threaded pool.

Converters are shared across references (the production pattern: a
``TagDiscoverer`` hands its one converter pair to every reference it
creates), so the per-reference delta measures the middleware, not the
test harness.
"""

import gc
import threading
import time

from repro.android.nfc.tech import Tag
from repro.clock import SystemClock
from repro.concurrent import EventLog, wait_until
from repro.core.scheduler import Reactor
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.metrics import percentile
from repro.tags.factory import make_tags

from benchmarks.conftest import emit_bench_json
from tests.conftest import PlainNfcActivity, string_converters

ASYNCIO_REFERENCES = 100_000  # the tentpole population
THREADED_REFERENCES = 512  # thread-per-reference baseline (same metric)
DENSITY_FLOOR = 10.0  # asyncio must pack >= 10x refs per MB
IDLE_WINDOW_SECONDS = 0.5
IDLE_CPU_CEILING_SECONDS = 0.05  # "near zero" over the idle window
PARK_TIMEOUT = 600.0  # pending-write timeout while tags are absent

TIMER_TASKS = 400
TIMER_DELAY_SECONDS = 0.2

THROUGHPUT_REFERENCES = 500

_PAYLOAD = {}


def _rss_kb() -> int:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("VmRSS not found")


def _idle_cpu(wall_seconds: float) -> float:
    """Process CPU seconds consumed while this thread sleeps."""
    start = time.process_time()
    time.sleep(wall_seconds)
    return time.process_time() - start


def _build_references(activity, phone, tags, **kwargs):
    """References over one shared converter pair, discoverer-style."""
    read_conv, write_conv = string_converters()
    factory = activity.reference_factory
    port = phone.port
    return [
        factory.get_or_create(Tag(tag, port), read_conv, write_conv, **kwargs)[0]
        for tag in tags
    ]


def _run_density_phase(count: int, reactor_mode: str, **ref_kwargs) -> dict:
    """Idle density for one backend: RSS per bare idle reference, then
    idle CPU with a parked pending write per reference."""
    with Scenario() as scenario:
        phone = scenario.add_phone(
            f"density-{reactor_mode}", reactor_mode=reactor_mode
        )
        activity = scenario.start(phone, PlainNfcActivity)
        tags = make_tags(count)  # absent: never enter the field

        gc.collect()
        rss_before = _rss_kb()
        references = _build_references(activity, phone, tags, **ref_kwargs)
        time.sleep(0.5)  # let every event loop park
        gc.collect()
        rss_after = _rss_kb()
        kb_per_reference = (rss_after - rss_before) / count

        for reference in references:
            reference.write("parked", timeout=PARK_TIMEOUT)
        time.sleep(1.0 if count <= 1000 else 5.0)  # absent-tag steps drain
        idle_cpu = _idle_cpu(IDLE_WINDOW_SECONDS)

        return {
            "references": count,
            "kb_per_reference": round(kb_per_reference, 3),
            "refs_per_mb": round(1024.0 / kb_per_reference, 1),
            "idle_cpu_seconds": round(idle_cpu, 4),
            "reactor_threads": phone.reactor.thread_count,
            "process_threads": threading.active_count(),
        }


def _run_wakeup_latency(mode: str) -> dict:
    """p50/p99 lag between a realtime deadline and the step running."""
    clock = SystemClock()
    reactor = Reactor(clock=clock, mode=mode, name=f"lat-{mode}")
    try:
        latencies = []
        lock = threading.Lock()
        done = threading.Event()

        def make_step(deadline):
            def step():
                lag = clock.now() - deadline
                with lock:
                    latencies.append(lag)
                    if len(latencies) == TIMER_TASKS:
                        done.set()
                return None

            return step

        base = clock.now() + TIMER_DELAY_SECONDS
        for index in range(TIMER_TASKS):
            deadline = base + (index % 20) * 0.005  # spread over 100ms
            reactor.register(make_step(deadline), name=f"lat-{index}").schedule_at(
                deadline
            )
        assert done.wait(30)
        return {
            "tasks": TIMER_TASKS,
            "p50_ms": round(percentile(latencies, 50) * 1000, 3),
            "p99_ms": round(percentile(latencies, 99) * 1000, 3),
        }
    finally:
        reactor.stop()


def _run_throughput(reactor_mode: str) -> dict:
    """A write+read per reference across in-field references."""
    with Scenario() as scenario:
        phone = scenario.add_phone(
            f"tput-{reactor_mode}", reactor_mode=reactor_mode
        )
        activity = scenario.start(phone, PlainNfcActivity)
        tags = make_tags(THROUGHPUT_REFERENCES)
        for tag in tags:
            scenario.put(tag, phone)
        references = _build_references(activity, phone, tags)

        done = EventLog()
        failed = EventLog()
        started = time.monotonic()
        for index, reference in enumerate(references):
            reference.write(
                f"w{index}",
                on_written=lambda r: done.append(1),
                on_failed=lambda r: failed.append(1),
                timeout=60.0,
            )
            reference.read(
                on_read=lambda r: done.append(1),
                on_failed=lambda r: failed.append(1),
                timeout=60.0,
            )
        assert done.wait_for_count(2 * THROUGHPUT_REFERENCES, timeout=120)
        assert len(failed) == 0
        elapsed = time.monotonic() - started
        return {
            "references": THROUGHPUT_REFERENCES,
            "ops_completed": 2 * THROUGHPUT_REFERENCES,
            "ops_per_second": round((2 * THROUGHPUT_REFERENCES) / elapsed, 1),
        }


def test_hundred_thousand_idle_references(benchmark):
    """100k idle references on the asyncio backend: >= 10x the density
    of thread-per-reference mode, one runtime thread, near-zero CPU."""

    def run_all():
        # Threaded first: its 512 thread stacks release cleanly before
        # the asyncio phase's baseline snapshot (the reverse order would
        # leave half a GB of freed heap under the threaded measurement).
        threaded = _run_density_phase(
            THREADED_REFERENCES, "threaded", threaded=True
        )
        asyncio_mode = _run_density_phase(ASYNCIO_REFERENCES, "asyncio")
        return threaded, asyncio_mode

    threaded, asyncio_mode = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ratio = asyncio_mode["refs_per_mb"] / threaded["refs_per_mb"]

    table = Table(
        f"Idle reference density -- {ASYNCIO_REFERENCES:,} references on one "
        "asyncio loop vs thread-per-reference",
        ["measure", "asyncio", f"threaded (x{THREADED_REFERENCES} refs)"],
    )
    table.add_row(
        "references", asyncio_mode["references"], threaded["references"]
    )
    table.add_row(
        "KB / idle reference",
        asyncio_mode["kb_per_reference"],
        threaded["kb_per_reference"],
    )
    table.add_row(
        "references / MB", asyncio_mode["refs_per_mb"], threaded["refs_per_mb"]
    )
    table.add_row(
        f"idle CPU over {IDLE_WINDOW_SECONDS}s (s)",
        asyncio_mode["idle_cpu_seconds"],
        threaded["idle_cpu_seconds"],
    )
    table.add_row(
        "reactor threads",
        asyncio_mode["reactor_threads"],
        threaded["reactor_threads"],
    )
    table.add_row("density ratio", round(ratio, 1), "-")
    table.print()

    _PAYLOAD["idle_density"] = {
        "asyncio": asyncio_mode,
        "threaded": threaded,
        "density_ratio": round(ratio, 2),
        "density_floor": DENSITY_FLOOR,
        "idle_window_seconds": IDLE_WINDOW_SECONDS,
    }
    emit_bench_json("async", _PAYLOAD)

    assert asyncio_mode["references"] >= 100_000
    # The whole population multiplexes onto a single loop thread.
    assert asyncio_mode["reactor_threads"] <= 1
    # 100k parked deadlines cost (nearly) nothing: one armed call_later.
    assert asyncio_mode["idle_cpu_seconds"] < IDLE_CPU_CEILING_SECONDS
    assert ratio >= DENSITY_FLOOR


def test_wakeup_latency_and_throughput(benchmark):
    """Loop timers must match the threaded timer thread's promptness,
    and reference throughput must survive the single-loop backend."""

    def run_all():
        return {
            "wakeup": {
                mode: _run_wakeup_latency(mode)
                for mode in ("threaded", "asyncio")
            },
            "throughput": {
                mode: _run_throughput(mode) for mode in ("threaded", "asyncio")
            },
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Async backend -- wakeup latency and reference throughput",
        ["measure", "threaded", "asyncio"],
    )
    table.add_row(
        f"wakeup p50 over {TIMER_TASKS} timers (ms)",
        results["wakeup"]["threaded"]["p50_ms"],
        results["wakeup"]["asyncio"]["p50_ms"],
    )
    table.add_row(
        "wakeup p99 (ms)",
        results["wakeup"]["threaded"]["p99_ms"],
        results["wakeup"]["asyncio"]["p99_ms"],
    )
    table.add_row(
        f"ops/s over {THROUGHPUT_REFERENCES} in-field refs",
        results["throughput"]["threaded"]["ops_per_second"],
        results["throughput"]["asyncio"]["ops_per_second"],
    )
    table.print()

    _PAYLOAD["wakeup_latency"] = {
        "delay_seconds": TIMER_DELAY_SECONDS,
        "threaded": results["wakeup"]["threaded"],
        "asyncio": results["wakeup"]["asyncio"],
    }
    _PAYLOAD["throughput"] = {
        "threaded": results["throughput"]["threaded"],
        "asyncio": results["throughput"]["asyncio"],
    }
    emit_bench_json("async", _PAYLOAD)

    for mode in ("threaded", "asyncio"):
        # Loose ceiling: CI boxes are noisy, but a timer backend that
        # fires whole tenths of a second late is broken.
        assert results["wakeup"][mode]["p99_ms"] < 500.0
        assert results["throughput"][mode]["ops_completed"] == (
            2 * THROUGHPUT_REFERENCES
        )
