"""Shared helpers for the benchmark/reproduction harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index) and prints the reproduced
rows/series via ``repro.harness.report``. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


@pytest.fixture
def no_capture_note():
    """Reminder printed once per module when output capture is on."""
    return None
