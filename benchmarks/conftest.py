"""Shared helpers for the benchmark/reproduction harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index) and prints the reproduced
rows/series via ``repro.harness.report``. Run with::

    pytest benchmarks/ --benchmark-only -s

Benches that feed CI dashboards additionally emit a machine-readable
``BENCH_<name>.json`` next to this file via :func:`emit_bench_json`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def emit_bench_json(name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Write ``payload`` to ``benchmarks/BENCH_<name>.json`` and return the path.

    The JSON is stable (sorted keys, trailing newline) so CI can diff
    successive runs; payloads should stick to plain numbers/strings.
    """
    path = _BENCH_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def bench_json():
    """Fixture form of :func:`emit_bench_json` for benches that prefer it."""
    return emit_bench_json


@pytest.fixture
def no_capture_note():
    """Reminder printed once per module when output capture is on."""
    return None
