"""Section 4 retry claim: MORENA retries automatically, the user does not.

"Thanks to its asynchronous communication abstractions, operations that
fail due to tag disconnections are automatically retried, which is not
incorporated in the handcrafted version, in which the user must manually
reattempt the operation."

Experiment: the share-via-empty-tag story under a lossy link. A seeded
simulated user taps the phone against the tag until the joiner is
created. The handcrafted app makes exactly one write attempt per tap;
MORENA's queued write retries throughout every tap window. The
user-visible metric -- taps until success -- must be lower for MORENA,
increasingly so as the link degrades.
"""

import pytest

from repro.apps.wifi import WifiConfig, WifiJoinerActivity
from repro.baseline import HandcraftedWifiActivity, WifiConfigData
from repro.harness.report import Table
from repro.harness.scenario import Scenario
from repro.harness.user import SimulatedUser
from repro.radio.link import LossyLink
from repro.tags.factory import make_tag

LOSS_LEVELS = [0.0, 0.3, 0.6]
USERS_PER_LEVEL = 5
MAX_TAPS = 60


def run_session(variant: str, loss: float, seed: int) -> int:
    """Taps until the WiFi joiner is created; MAX_TAPS + 1 on give-up."""
    with Scenario() as scenario:
        scenario.wifi_registry.add_network("net", "key")
        phone = scenario.add_phone("phone", link=LossyLink(loss, seed=seed))
        if variant == "morena":
            app = scenario.start(phone, WifiJoinerActivity, scenario.wifi_registry)
            app.share_with_tag(WifiConfig(app, "net", "key"))
        else:
            app = scenario.start(
                phone, HandcraftedWifiActivity, scenario.wifi_registry
            )
            app.share_with_tag(WifiConfigData("net", "key"))
        tag = make_tag()
        user = SimulatedUser(
            scenario.env, phone, hold_seconds=0.06, pause_seconds=0.0
        )

        def created() -> bool:
            if isinstance(app, HandcraftedWifiActivity):
                app.join_workers(timeout=1.0)
                phone.sync()
            return "WiFi joiner created!" in phone.toasts.snapshot()

        stats = user.tap_until(tag, done=created, max_taps=MAX_TAPS)
        return stats.taps if stats.succeeded else MAX_TAPS + 1


def average_taps(variant: str, loss: float) -> float:
    runs = [run_session(variant, loss, seed) for seed in range(USERS_PER_LEVEL)]
    return sum(runs) / len(runs)


@pytest.mark.parametrize("loss", LOSS_LEVELS)
def test_retry_taps_to_success(benchmark, loss):
    results = benchmark.pedantic(
        lambda: (average_taps("handcrafted", loss), average_taps("morena", loss)),
        rounds=1,
        iterations=1,
    )
    handcrafted_taps, morena_taps = results

    table = Table(
        f"Section 4 retry claim -- taps until joiner created (loss={loss})",
        ["variant", "avg taps"],
    )
    table.add_row("handcrafted", handcrafted_taps)
    table.add_row("MORENA", morena_taps)
    table.print()

    # MORENA never needs more user effort, and on a degraded link the
    # automatic retries must visibly beat one-attempt-per-tap.
    assert morena_taps <= handcrafted_taps
    if loss >= 0.6:
        assert morena_taps < handcrafted_taps


def test_retry_attempt_accounting(benchmark):
    """MORENA converts user re-taps into silent radio retries: for the same
    outcome it makes *more* radio attempts while asking *fewer* taps."""

    def run() -> tuple:
        with Scenario() as scenario:
            scenario.wifi_registry.add_network("net", "key")
            phone = scenario.add_phone("phone", link=LossyLink(0.6, seed=42))
            app = scenario.start(phone, WifiJoinerActivity, scenario.wifi_registry)
            app.share_with_tag(WifiConfig(app, "net", "key"))
            tag = make_tag()
            user = SimulatedUser(
                scenario.env, phone, hold_seconds=0.06, pause_seconds=0.0
            )
            stats = user.tap_until(
                tag,
                done=lambda: "WiFi joiner created!" in phone.toasts.snapshot(),
                max_taps=MAX_TAPS,
            )
            return stats.taps, phone.port.write_attempts

    taps, attempts = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMORENA: {taps} taps, {attempts} radio write attempts")
    assert attempts >= taps  # the middleware worked harder than the user
