"""Figure 2 reproduction: RFID lines of code, handcrafted vs MORENA.

The paper reports 197 RFID-related LoC for the handcrafted WiFi-sharing
app and 36 for the MORENA version (a ~5x reduction), split over five
subproblems, with MORENA needing zero concurrency-management code and
shifting its share toward event handling. This module recounts both
implementations of this reproduction with the auditable region counter
and asserts the paper's *shape*:

* total reduction factor >= 3,
* MORENA concurrency LoC == 0,
* event handling is MORENA's largest share,
* every subproblem needs at most as much code in MORENA.
"""

import repro.apps.wifi.config as morena_config
import repro.apps.wifi.morena_app as morena_app
import repro.baseline.handcrafted_wifi as handcrafted
from repro.harness.report import Table
from repro.metrics.annotations import CATEGORIES, RfidCategory
from repro.metrics.loc import compare_implementations

HANDCRAFTED_MODULES = [handcrafted]
MORENA_MODULES = [morena_app, morena_config]

PAPER_HANDCRAFTED_TOTAL = 197
PAPER_MORENA_TOTAL = 36


def comparison():
    return compare_implementations(HANDCRAFTED_MODULES, MORENA_MODULES)


def test_fig2_left_loc_by_subproblem(benchmark):
    """Figure 2 (left): absolute LoC per subproblem."""
    result = benchmark(comparison)

    table = Table(
        "Figure 2 (left) -- RFID LoC per subproblem "
        f"[paper totals: {PAPER_HANDCRAFTED_TOTAL} vs {PAPER_MORENA_TOTAL}]",
        ["subproblem", "handcrafted", "MORENA"],
    )
    for label, hand, morena in result.rows():
        table.add_row(label, hand, morena)
    table.add_row("TOTAL", result.handcrafted.total, result.morena.total)
    table.print()
    print(f"\nreduction factor: x{result.reduction_factor:.1f} (paper: x5.5)")

    assert result.reduction_factor >= 3.0
    assert result.morena.by_category[RfidCategory.CONCURRENCY] == 0
    for category in CATEGORIES:
        assert (
            result.morena.by_category[category]
            <= result.handcrafted.by_category[category]
        )


def test_fig2_right_percentages(benchmark):
    """Figure 2 (right): percentage share of each subproblem."""
    result = benchmark(comparison)

    table = Table(
        "Figure 2 (right) -- share of each subproblem (%)",
        ["subproblem", "handcrafted %", "MORENA %"],
    )
    for label, hand, morena in result.percentage_rows():
        table.add_row(label, round(hand, 1), round(morena, 1))
    table.print()

    morena_shares = result.morena.percentages()
    # "MORENA shifts the focus to event handling".
    assert morena_shares[RfidCategory.EVENT_HANDLING] == max(morena_shares.values())
    assert morena_shares[RfidCategory.CONCURRENCY] == 0.0
    # The handcrafted version spends a real fraction on concurrency.
    assert result.handcrafted.percentage(RfidCategory.CONCURRENCY) > 10.0
    # Relative shift: event handling is more prominent in MORENA than
    # in the handcrafted version.
    assert (
        morena_shares[RfidCategory.EVENT_HANDLING]
        > result.handcrafted.percentage(RfidCategory.EVENT_HANDLING)
    )
