"""morelint repo-wide throughput: the analysis must stay interactive.

One claim, emitted to ``BENCH_lint.json``:

* **Repo sweep speed.** Flow-aware linting (CFG + fixpoint dataflow +
  the cross-module project index) over the repository's own ``src``,
  ``examples``, and ``benchmarks`` trees completes in well under 10
  seconds, and reports zero error-severity findings that are not in
  the committed baseline -- the same gate CI enforces.
"""

import pathlib
import time

from repro.analysis import baseline as baseline_mod
from repro.analysis.engine import collect_files, lint_paths
from repro.analysis.model import Severity
from repro.harness.report import Table

from benchmarks.conftest import emit_bench_json

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
LINT_PATHS = [
    str(REPO_ROOT / "src"),
    str(REPO_ROOT / "examples"),
    str(REPO_ROOT / "benchmarks"),
]
WALL_BUDGET_SECONDS = 10.0


def test_repo_lint_wall_time_and_cleanliness():
    files = collect_files(LINT_PATHS)
    start = time.perf_counter()
    findings = lint_paths(LINT_PATHS)
    wall = time.perf_counter() - start

    known = baseline_mod.load(str(REPO_ROOT / baseline_mod.DEFAULT_BASELINE))
    errors = [f for f in findings if f.severity is Severity.ERROR]
    new_errors = [
        f
        for f in errors
        if baseline_mod.fingerprint(f, root=str(REPO_ROOT)) not in known
    ]

    table = Table(
        "morelint repo sweep",
        ["files", "findings", "errors", "new errors", "seconds"],
    )
    table.add_row(
        len(files), len(findings), len(errors), len(new_errors), f"{wall:.2f}"
    )
    print(table.render())

    emit_bench_json(
        "lint",
        {
            "repo_lint": {
                "wall_seconds": round(wall, 3),
                "files": len(files),
                "findings": len(findings),
                "errors": len(errors),
                "new_errors": len(new_errors),
            }
        },
    )

    assert wall < WALL_BUDGET_SECONDS, (
        f"repo-wide lint took {wall:.2f}s (budget {WALL_BUDGET_SECONDS}s)"
    )
    assert new_errors == [], "\n".join(f.format() for f in new_errors)
