"""Transport cost model: what a relayed radio round trip costs.

NFCGate-style relaying (PAPERS.md) services a tag physically present in
another device's field; every relayed round trip pays a network hop on
top of the normal transfer model. This bench pins that cost model down
*deterministically*: everything runs on a :class:`ManualClock`, so the
measured quantity is pure virtual seconds from
:class:`TransferTiming` + :class:`RelayTransport` -- no wall-clock
noise, byte-for-byte reproducible, guarded tightly in CI.

Reported rows:

* local vs relayed seconds per unbatched read round trip and the
  ``overhead_ratio`` between them (the guarded row);
* the batched session variant, showing the per-port transaction
  scheduler amortizes the connect share over the relay exactly as it
  does locally.
"""

from repro.clock import ManualClock
from repro.harness.report import Table
from repro.radio.environment import RfidEnvironment
from repro.radio.timing import TransferTiming
from repro.radio.transport import RelayTransport
from repro.tags.factory import make_tag

from benchmarks.conftest import emit_bench_json

from tests.conftest import text_message

READS = 50
RELAY_HOP_SECONDS = 0.02
TIMING = TransferTiming(base_seconds=0.005, seconds_per_byte=1e-4)


def make_world():
    clock = ManualClock()
    env = RfidEnvironment(
        clock=clock,
        timing=TIMING,
        transport=RelayTransport(latency_seconds=RELAY_HOP_SECONDS),
    )
    reader = env.create_port("reader")
    bench = env.create_port("bench")
    tag = make_tag(content=text_message("transport bench payload"))
    return clock, env, reader, bench, tag


def virtual_seconds_per_read(relayed: bool) -> float:
    """Unbatched reads; each pays connect + transfer (+ hop when relayed)."""
    clock, env, reader, bench, tag = make_world()
    if relayed:
        env.move_tag_into_field(tag, bench)
        env.pair_fields(reader, bench)
    else:
        env.move_tag_into_field(tag, reader)
    start = clock.now()
    for _ in range(READS):
        reader.read_ndef(tag)
    return (clock.now() - start) / READS


def virtual_seconds_per_batched_read(relayed: bool) -> float:
    """One session for all reads: the connect share is paid once."""
    clock, env, reader, bench, tag = make_world()
    if relayed:
        env.move_tag_into_field(tag, bench)
        env.pair_fields(reader, bench)
    else:
        env.move_tag_into_field(tag, reader)
    start = clock.now()
    session = reader.open_session(tag)
    try:
        for _ in range(READS):
            session.read_ndef(tag)
    finally:
        session.close()
    return (clock.now() - start) / READS


def test_relay_roundtrip_cost_model(benchmark):
    local = benchmark.pedantic(
        virtual_seconds_per_read, args=(False,), rounds=1, iterations=1
    )
    relayed = virtual_seconds_per_read(True)
    local_batched = virtual_seconds_per_batched_read(False)
    relayed_batched = virtual_seconds_per_batched_read(True)

    overhead_ratio = relayed / local
    table = Table(
        f"Relayed vs local round trips -- {READS} reads, "
        f"{RELAY_HOP_SECONDS * 1000:.0f} ms hop, virtual seconds",
        ["variant", "s/op (unbatched)", "s/op (batched)", "vs local"],
    )
    table.add_row(
        "local field", round(local, 5), round(local_batched, 5), "1.00x"
    )
    table.add_row(
        "relayed field",
        round(relayed, 5),
        round(relayed_batched, 5),
        f"{overhead_ratio:.2f}x",
    )
    table.print()

    # Virtual time is exact: the relayed op costs the local op plus the hop.
    assert abs(relayed - (local + RELAY_HOP_SECONDS)) < 1e-9
    # Batching amortizes the connect share identically on both transports.
    assert local_batched < local
    assert relayed_batched < relayed
    # A batched window pays the hop once at connect (a radio round trip
    # too) and once per operation; per-op that is hop * (READS+1)/READS.
    expected_delta = RELAY_HOP_SECONDS * (READS + 1) / READS
    assert abs((relayed_batched - local_batched) - expected_delta) < 1e-9

    emit_bench_json(
        "transport",
        {
            "relay_roundtrip": {
                "reads": READS,
                "relay_hop_seconds": RELAY_HOP_SECONDS,
                "local_seconds_per_op": round(local, 6),
                "relayed_seconds_per_op": round(relayed, 6),
                "local_batched_seconds_per_op": round(local_batched, 6),
                "relayed_batched_seconds_per_op": round(relayed_batched, 6),
                "overhead_ratio": round(overhead_ratio, 4),
            }
        },
    )
