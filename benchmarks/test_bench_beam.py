"""Beam reliability ablation: queued Beamer vs one-shot push under loss.

Sweeps link loss and compares the delivery rate of MORENA's queued,
retrying ``Beamer`` against a single raw ``push_now`` per message -- the
Beam analogue of the section 4 retry claim.
"""

import pytest

from repro.concurrent import EventLog
from repro.core.beam import Beamer
from repro.core.converters import (
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
)
from repro.core.beam import BeamReceivedListener
from repro.core.nfc_activity import NFCActivity
from repro.harness.report import Series, Table
from repro.harness.scenario import Scenario
from repro.radio.link import LossyLink

BEAM_TYPE = "application/x-bench-beam"
MESSAGES = 20
LOSS_LEVELS = [0.0, 0.3, 0.6]


class Receiver(NFCActivity):
    def on_create(self):
        self.received = EventLog()
        app = self

        class Listener(BeamReceivedListener):
            def on_beam_received(self, obj):
                app.received.append(obj)

        Listener(self, BEAM_TYPE, NdefMessageToStringConverter())


class Sender(NFCActivity):
    def on_create(self):
        self.beamer = Beamer(self, StringToNdefMessageConverter(BEAM_TYPE))


def run(loss: float, seed: int) -> tuple:
    """Returns (queued delivery rate, one-shot delivery rate)."""
    with Scenario() as scenario:
        sender_phone = scenario.add_phone("sender", link=LossyLink(loss, seed=seed))
        receiver_phone = scenario.add_phone("receiver")
        sender = scenario.start(sender_phone, Sender)
        receiver = scenario.start(receiver_phone, Receiver)
        scenario.pair(sender_phone, receiver_phone)

        # One-shot: a single raw push per message, no retry.
        one_shot_delivered = 0
        for index in range(MESSAGES):
            try:
                sender_phone.nfc_adapter.push_now(
                    StringToNdefMessageConverter(BEAM_TYPE).convert(f"raw-{index}")
                )
                one_shot_delivered += 1
            except Exception:  # noqa: BLE001 - loss counted, not raised
                pass

        # Queued: the Beamer retries until the timeout.
        delivered = EventLog()
        failures = EventLog()
        for index in range(MESSAGES):
            sender.beamer.beam(
                f"queued-{index}",
                on_success=lambda: delivered.append("ok"),
                on_failed=lambda: failures.append("timed-out"),
                timeout=5.0,
            )
        assert delivered.wait_for_count(MESSAGES, timeout=10)
        assert len(failures) == 0
        receiver_phone.sync()
        return len(delivered) / MESSAGES, one_shot_delivered / MESSAGES


def test_beam_delivery_vs_loss(benchmark):
    rows = benchmark.pedantic(
        lambda: [(loss,) + run(loss, seed=7) for loss in LOSS_LEVELS],
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Beam ablation -- delivery rate vs link loss "
        f"({MESSAGES} messages per cell)",
        ["loss", "queued Beamer", "one-shot push"],
    )
    queued_series = Series("queued", "loss", "delivery rate")
    for loss, queued_rate, one_shot_rate in rows:
        table.add_row(loss, queued_rate, one_shot_rate)
        queued_series.add(loss, queued_rate)
    table.print()

    for loss, queued_rate, one_shot_rate in rows:
        assert queued_rate == 1.0  # retries always deliver within the timeout
        assert queued_rate >= one_shot_rate
    # On a degraded link the one-shot path visibly drops messages.
    worst = rows[-1]
    assert worst[2] < 1.0
