#!/usr/bin/env python
"""Standards interop: joining WiFi from a router's NFC sticker.

Real routers ship NFC stickers in the NFC Forum static-handover format
with a WiFi Simple Config (WSC) carrier -- not in MORENA's thing format.
This example shows the same application speaking both: one activity,
two ``TagDiscoverer``s with different conversion strategies (exactly the
multi-discoverer pattern the paper highlights in section 3.1).

Run:  python examples/router_interop.py
"""

from repro.apps.wifi import WifiConfig
from repro.apps.wifi.interop import WscWifiJoinerActivity, router_sticker
from repro.concurrent import wait_until
from repro.harness import Scenario
from repro.ndef.handover import parse_handover_select
from repro.ndef.wsc import WifiCredential
from repro.tags import make_tag


def main() -> None:
    with Scenario() as scenario:
        registry = scenario.wifi_registry
        registry.add_network("HomeRouter-5G", "correct horse battery")
        registry.add_network("OfficeNet", "office-key")

        phone = scenario.add_phone("dual-format-phone")
        app = scenario.start(phone, WscWifiJoinerActivity, registry)

        # A sticker exactly as the router manufacturer would print it.
        sticker = router_sticker("HomeRouter-5G", "correct horse battery")
        parsed = parse_handover_select(sticker)
        credential = WifiCredential.from_record(parsed.carrier_records()[0])
        print("The router sticker carries a static handover message:")
        print(f"  handover version: {parsed.version >> 4}.{parsed.version & 0xF}")
        print(f"  carrier: WSC, ssid={credential.ssid!r}, auth={credential.auth}")

        router_tag = make_tag("NTAG215", content=sticker)
        print("User taps the router sticker...")
        scenario.put(router_tag, phone)
        assert wait_until(lambda: app.wifi.connected_ssid == "HomeRouter-5G")
        print(f"  connected to: {app.wifi.connected_ssid}")
        scenario.take(router_tag, phone)

        # The same activity still speaks MORENA's thing format.
        thing_tag = make_tag()
        app.share_with_tag(WifiConfig(app, "OfficeNet", "office-key"))
        print("User taps an empty tag to share the office network (thing format)...")
        scenario.put(thing_tag, phone)
        assert wait_until(
            lambda: "WiFi joiner created!" in phone.toasts.snapshot()
        )
        scenario.take(thing_tag, phone)
        print("User re-taps the freshly written thing tag...")
        scenario.put(thing_tag, phone)
        assert wait_until(lambda: app.wifi.connected_ssid == "OfficeNet")
        print(f"  connected to: {app.wifi.connected_ssid}")
        print("Router interop scenario OK.")


if __name__ == "__main__":
    main()
