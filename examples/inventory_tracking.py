#!/usr/bin/env python
"""Asset tracking with things and leases.

The related-work section of the paper positions MORENA against
industrial RFID middleware (asset management, product tracking). This
example shows the thing layer handling a small warehouse: every crate
carries a tag holding an ``Asset`` thing; a clerk's phone scans crates,
bumps their inspection count, and uses the leasing extension so two
clerks cannot race on the same crate.

Run:  python examples/inventory_tracking.py
"""

from repro.concurrent import wait_until
from repro.core import IdentityConverters
from repro.harness import Scenario
from repro.leasing import LeaseManager
from repro.things import Thing, ThingActivity


class Asset(Thing):
    """One tracked crate."""

    name: str
    location: str
    inspections: int

    def __init__(self, activity, name: str, location: str) -> None:
        super().__init__(activity)
        self.name = name
        self.location = location
        self.inspections = 0


class ClerkActivity(ThingActivity):
    THING_CLASS = Asset

    def on_create(self) -> None:
        self.seen = []

    def when_discovered(self, asset: Asset) -> None:
        self.seen.append(asset.name)
        asset.inspections += 1
        asset.location = f"checked-by-{self.device.name}"
        asset.save_async(
            on_saved=lambda a: self.toast(f"{a.name}: inspection #{a.inspections}"),
            on_failed=lambda: self.toast("save failed, re-scan the crate"),
        )

    def when_discovered_empty(self, empty) -> None:
        if getattr(self, "pending_asset", None) is not None:
            empty.initialize(
                self.pending_asset,
                on_saved=lambda a: self.toast(f"labelled crate {a.name}"),
                on_save_failed=lambda: self.toast("labelling failed, tap again"),
            )
            self.pending_asset = None


def main() -> None:
    with Scenario() as scenario:
        clerk = scenario.add_phone("clerk-1")
        app = scenario.start(clerk, ClerkActivity)

        # Label three blank crates.
        crates = [scenario.add_tag() for _ in range(3)]
        for index, crate in enumerate(crates):
            app.pending_asset = Asset(app, f"crate-{index}", "dock")
            scenario.put(crate, clerk)
            assert wait_until(
                lambda i=index: f"labelled crate crate-{i}" in clerk.toasts.snapshot()
            )
            scenario.take(crate, clerk)
        print("Labelled:", ", ".join(f"crate-{i}" for i in range(3)))

        # Inspect every crate twice.
        for round_number in (1, 2):
            for crate in crates:
                scenario.put(crate, clerk)
                assert wait_until(
                    lambda c=crate, r=round_number: any(
                        f"inspection #{r}" in t for t in clerk.toasts.snapshot()
                    )
                )
                scenario.take(crate, clerk)
            print(f"Inspection round {round_number} complete.")

        # Exclusive maintenance via a lease: a second clerk is denied.
        clerk2 = scenario.add_phone("clerk-2")
        app2 = scenario.start(clerk2, ClerkActivity)
        crate = crates[0]
        scenario.put(crate, clerk)
        assert wait_until(
            lambda: any("inspection #3" in t for t in clerk.toasts.snapshot())
        )
        scenario.put(crate, clerk2)
        assert wait_until(
            lambda: any("inspection #4" in t for t in clerk2.toasts.snapshot())
        )

        from repro.android.nfc.tech import Tag

        ident = IdentityConverters()
        ref1, _ = app.reference_factory.get_or_create(
            Tag(crate, clerk.port), ident, ident
        )
        ref2, _ = app2.reference_factory.get_or_create(
            Tag(crate, clerk2.port), ident, ident
        )
        lease1 = LeaseManager(ref1, "clerk-1")
        lease2 = LeaseManager(ref2, "clerk-2")

        outcome = []
        lease1.acquire(
            duration=2.0, on_acquired=lambda l: outcome.append("clerk-1 holds lease")
        )
        try:
            assert wait_until(lambda: bool(outcome))
            # This acquisition is *meant* to be denied (clerk-1 holds
            # the crate), so there is no lease to release on any path.
            lease2.acquire(  # morelint: disable=MOR009
                duration=2.0,
                on_acquired=lambda l: outcome.append("clerk-2 holds lease"),
                on_denied=lambda: outcome.append("clerk-2 denied (crate busy)"),
            )
            assert wait_until(lambda: len(outcome) == 2)
            print("Lease contention:", "; ".join(outcome))
            assert outcome[1] == "clerk-2 denied (crate busy)"
        finally:
            # Hand the crate back instead of squatting until expiry: a
            # leaked guard record blocks every other clerk for the full
            # lease duration.
            released = []
            lease1.release(on_released=lambda: released.append(True))
            assert wait_until(lambda: bool(released))
        print("Inventory tracking scenario OK.")


if __name__ == "__main__":
    main()
