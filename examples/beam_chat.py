#!/usr/bin/env python
"""Phone-to-phone messaging over Beam (paper section 3.3/3.4).

Two phones exchange short text messages by touching backs; a third phone
runs a filtered listener (``check_condition``) that only reacts to
messages mentioning it. Shows the asynchronous Beamer queue: messages
composed while no phone is nearby are delivered on the next touch.

Run:  python examples/beam_chat.py
"""

from repro.concurrent import EventLog, wait_until
from repro.core import (
    Beamer,
    BeamReceivedListener,
    NFCActivity,
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
)
from repro.harness import Scenario

CHAT_TYPE = "application/x-beamchat"


class ChatActivity(NFCActivity):
    def on_create(self) -> None:
        self.inbox = EventLog()
        self.listener = self.make_listener()
        self.beamer = Beamer(self, StringToNdefMessageConverter(CHAT_TYPE))

    def make_listener(self) -> "InboxListener":
        return InboxListener(self, CHAT_TYPE, NdefMessageToStringConverter())

    def send(self, text: str) -> None:
        self.beamer.beam(
            text,
            on_success=lambda: self.toast(f"sent: {text}"),
            on_failed=lambda: self.toast(f"undelivered: {text}"),
        )


class InboxListener(BeamReceivedListener):
    def on_beam_received_from(self, text: str, sender: str) -> None:
        self.activity.inbox.append(f"{sender}: {text}")


class MentionOnlyActivity(ChatActivity):
    """Only accepts messages that mention this phone's name."""

    def make_listener(self) -> "InboxListener":
        activity = self

        class Filtered(InboxListener):
            def check_condition(self, text: str) -> bool:
                return activity.device.name in text

        return Filtered(self, CHAT_TYPE, NdefMessageToStringConverter())


def main() -> None:
    with Scenario() as scenario:
        alice = scenario.add_phone("alice")
        bob = scenario.add_phone("bob")
        carol = scenario.add_phone("carol")

        alice_app = scenario.start(alice, ChatActivity)
        bob_app = scenario.start(bob, ChatActivity)
        carol_app = scenario.start(carol, MentionOnlyActivity)

        print("Alice composes two messages while no phone is near...")
        alice_app.send("hello bob")
        alice_app.send("lunch at noon?")
        alice.sync()
        assert len(bob_app.inbox) == 0

        print("Alice and Bob touch phones...")
        scenario.pair(alice, bob)
        assert bob_app.inbox.wait_for_count(2)
        for line in bob_app.inbox.snapshot():
            print(f"  bob received  <- {line}")
        scenario.unpair(alice, bob)

        print("Bob replies...")
        bob_app.send("noon works")
        scenario.pair(alice, bob)
        assert alice_app.inbox.wait_for_count(1)
        print(f"  alice received <- {alice_app.inbox.snapshot()[0]}")
        scenario.unpair(alice, bob)

        print("Alice beams to Carol, whose listener filters on mentions...")
        alice_app.send("ignore this")
        scenario.pair(alice, carol)
        assert wait_until(lambda: "sent: ignore this" in alice.toasts.snapshot())
        scenario.unpair(alice, carol)
        alice_app.send("carol: ping")
        scenario.pair(alice, carol)
        assert carol_app.inbox.wait_for_count(1)
        carol.sync()
        inbox = carol_app.inbox.snapshot()
        assert inbox == ["alice: carol: ping"], inbox
        print(f"  carol received <- {inbox[0]}  (the other message was filtered)")
        print("Beam chat scenario OK.")


if __name__ == "__main__":
    main()
