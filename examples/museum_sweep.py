#!/usr/bin/env python
"""Geometric radio simulation: a visitor sweeping past museum exhibits.

Four exhibit tags hang on a wall, each holding a Smart-Poster-style text
label. A visitor's phone moves along the wall in small steps; tags enter
the field when the phone comes within NFC range (4 cm), transfer
reliably within 2 cm, and tear frequently in the edge band between the
two -- MORENA's references absorb the tears.

Run:  python examples/museum_sweep.py
"""

from repro.android.device import AndroidDevice
from repro.concurrent import EventLog
from repro.core import (
    NFCActivity,
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
    TagDiscoverer,
)
from repro.ndef import NdefMessage, mime_record
from repro.radio import SpatialEnvironment
from repro.tags import make_tag

LABEL_TYPE = "application/x-exhibit-label"
EXHIBITS = [
    ("The Night Watch", 0.00),
    ("Girl with a Pearl Earring", 0.10),
    ("The Garden of Earthly Delights", 0.20),
    ("The Tower of Babel", 0.30),
]


class GuideApp(NFCActivity):
    def on_create(self) -> None:
        self.seen = EventLog()
        app = self

        class LabelDiscoverer(TagDiscoverer):
            def on_tag_detected(self, reference):
                reference.read(
                    on_read=lambda r: app.seen.append(r.cached),
                    on_failed=lambda r: app.seen.append(None),
                    timeout=10.0,
                )

            def on_tag_redetected(self, reference):
                pass  # already reading / read

        self.discoverer = LabelDiscoverer(
            self,
            LABEL_TYPE,
            NdefMessageToStringConverter(),
            StringToNdefMessageConverter(LABEL_TYPE),
        )


def main() -> None:
    env = SpatialEnvironment(reliable_range=0.02, max_range=0.04, seed=7)
    phone = AndroidDevice("visitor", env)
    try:
        app = phone.start_activity(GuideApp)

        tags = []
        for label, x in EXHIBITS:
            tag = make_tag(
                "NTAG213",
                content=NdefMessage([mime_record(LABEL_TYPE, label.encode())]),
            )
            env.place_tag(tag, x, 0.0)
            tags.append(tag)
        print(f"Placed {len(tags)} exhibit tags along the wall.")

        # The visitor walks the wall at 5 mm per step, 1 cm off the wall;
        # each step takes ~10 ms of wall-clock time, so the references get
        # several retry windows while a tag is in range.
        import time

        print("Visitor sweeps along the wall...")
        step = 0.005
        position = -0.05
        while position < 0.35:
            env.place_phone(phone.port, position, 0.01)
            time.sleep(0.01)
            position += step
        phone.sync()

        assert app.seen.wait_for_count(len(EXHIBITS), timeout=10), app.seen.snapshot()
        print("Labels collected, in walking order:")
        for label in app.seen.snapshot():
            print(f"  - {label}")
        expected = [label for label, _ in EXHIBITS]
        assert app.seen.snapshot() == expected
        print("Museum sweep OK.")
    finally:
        phone.shutdown()


if __name__ == "__main__":
    main()
