#!/usr/bin/env python
"""The paper's running example end to end: WiFi sharing with things.

Three phones and a facility:

1. the facility initializes an empty tag with WiFi credentials,
2. a guest joins by swiping the tag,
3. the guest shares the network with a friend over Beam,
4. the facility renames the network and saves the tag,
5. a late guest swipes the (updated) tag and joins the renamed network.

Run:  python examples/wifi_sharing.py
"""

from repro.apps.wifi import WifiConfig, WifiJoinerActivity
from repro.concurrent import wait_until
from repro.harness import Scenario


def main() -> None:
    with Scenario() as scenario:
        registry = scenario.wifi_registry
        registry.add_network("LobbyWifi", "welcome123")

        facility = scenario.add_phone("facility")
        guest = scenario.add_phone("guest")
        friend = scenario.add_phone("friend")

        facility_app = scenario.start(facility, WifiJoinerActivity, registry)
        guest_app = scenario.start(guest, WifiJoinerActivity, registry)
        friend_app = scenario.start(friend, WifiJoinerActivity, registry)

        # 1. Initialize an empty tag with the credentials.
        tag = scenario.add_tag()
        facility_app.share_with_tag(
            WifiConfig(facility_app, "LobbyWifi", "welcome123")
        )
        print("Facility swipes an empty tag to create a WiFi joiner...")
        scenario.put(tag, facility)
        assert wait_until(
            lambda: "WiFi joiner created!" in facility.toasts.snapshot()
        )
        scenario.take(tag, facility)
        print(f"  toast: {facility.toasts.snapshot()[-1]}")

        # 2. A guest joins by swiping the tag.
        print("Guest swipes the tag...")
        scenario.put(tag, guest)
        assert wait_until(lambda: guest_app.wifi.connected_ssid == "LobbyWifi")
        scenario.take(tag, guest)
        print(f"  guest connected to: {guest_app.wifi.connected_ssid}")

        # 3. The guest beams the credentials to a friend.
        print("Guest broadcasts the joiner; phones touch...")
        guest.main_looper.post(
            lambda: guest_app.share_with_phone(guest_app.last_config)
        )
        guest.sync()
        scenario.pair(guest, friend)
        assert wait_until(lambda: friend_app.wifi.connected_ssid == "LobbyWifi")
        assert wait_until(lambda: "WiFi joiner shared!" in guest.toasts.snapshot())
        print(f"  friend connected to: {friend_app.wifi.connected_ssid}")

        # 4. The facility renames the network and saves the tag.
        registry.add_network("LobbyWifi-5G", "welcome456")
        print("Facility renames the network and saves the tag...")
        scenario.put(tag, facility)
        assert wait_until(lambda: facility_app.last_config is not None)
        config = facility_app.last_config
        facility.main_looper.post(
            lambda: facility_app.rename_network(config, "LobbyWifi-5G", "welcome456")
        )
        assert wait_until(
            lambda: "WiFi joiner saved!" in facility.toasts.snapshot()
        )
        scenario.take(tag, facility)

        # 5. A late guest joins the renamed network from the same tag.
        late = scenario.add_phone("late-guest")
        late_app = scenario.start(late, WifiJoinerActivity, registry)
        print("Late guest swipes the updated tag...")
        scenario.put(tag, late)
        assert wait_until(lambda: late_app.wifi.connected_ssid == "LobbyWifi-5G")
        print(f"  late guest connected to: {late_app.wifi.connected_ssid}")
        print("WiFi sharing scenario OK.")


if __name__ == "__main__":
    main()
