#!/usr/bin/env python
"""NDEF at the byte level: Smart Posters on simulated hardware.

Goes below MORENA to the substrates: builds an NFC Forum Smart Poster
record (URI + localized titles + action), writes it onto a simulated
NTAG213 through the blocking Android tech API, hexdumps the tag's TLV
area, and reads it back -- including what happens when the message does
not fit the tag.

Run:  python examples/smart_poster.py
"""

from repro.android.nfc.tech import Ndef, Tag
from repro.errors import TagCapacityError
from repro.harness import Scenario
from repro.ndef import NdefMessage, SmartPosterRecord
from repro.tags import make_tag


def hexdump(data: bytes, width: int = 16) -> str:
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hex_part = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"  {offset:04x}  {hex_part:<{width * 3}}  {text}")
    return "\n".join(lines)


def main() -> None:
    poster = SmartPosterRecord(
        uri="https://example.org/menu",
        titles={"en": "Today's menu", "nl": "Menu van vandaag"},
        action=0,
    )
    message = NdefMessage([poster.to_record()])
    print(f"Smart poster message: {message.byte_length} bytes encoded")

    with Scenario() as scenario:
        phone = scenario.add_phone("writer")
        tag = scenario.add_tag("NTAG213")
        scenario.put(tag, phone)

        handle = Tag(tag, phone.port)
        with Ndef.get(handle) as ndef:
            print(f"Tag capacity: {ndef.get_max_size()} bytes")
            ndef.write_ndef_message(message)
        print("Written. First 64 bytes of the tag's memory:")
        print(hexdump(tag.raw_dump()[:64]))

        with Ndef.get(handle) as ndef:
            read_back = ndef.get_ndef_message()
        decoded = SmartPosterRecord.from_record(read_back[0])
        print(f"Read back: uri={decoded.uri!r}")
        for lang, title in sorted(decoded.titles.items()):
            print(f"  title[{lang}] = {title!r}")
        assert decoded == poster

        # Capacity: the same poster padded past an Ultralight's 48 bytes.
        small = scenario.add_tag("MIFARE_ULTRALIGHT")
        scenario.put(small, phone)
        small_handle = Tag(small, phone.port)
        try:
            with Ndef.get(small_handle) as ndef:
                ndef.write_ndef_message(message)
        except TagCapacityError as exc:
            print(f"Ultralight rejects it, as on hardware: {exc}")
        else:
            raise AssertionError("expected a capacity error")
        print("Smart poster scenario OK.")


if __name__ == "__main__":
    main()
