#!/usr/bin/env python
"""Host card emulation: a phone as a loyalty card (the payment motivation).

The paper's introduction motivates NFC phones with mobile payment
(Google Wallet). This example runs that shape of interaction entirely in
the simulation: a customer's phone emulates a Type 4 card carrying a
loyalty thing; the merchant terminal (another phone running a MORENA
``ThingActivity``) reads it, bumps the visit counter, and the customer's
phone refreshes the card for the next visit.

Run:  python examples/loyalty_card.py
"""

from repro.android.nfc.hce import HostCardEmulationService
from repro.concurrent import EventLog, wait_until
from repro.gson import Gson
from repro.harness import Scenario
from repro.ndef import NdefMessage, mime_record
from repro.things import Thing, ThingActivity
from repro.things.activity import thing_mime_type


class LoyaltyCard(Thing):
    member: str
    visits: int

    def __init__(self, activity, member: str, visits: int = 0) -> None:
        super().__init__(activity)
        self.member = member
        self.visits = visits


class MerchantTerminal(ThingActivity):
    THING_CLASS = LoyaltyCard

    def on_create(self) -> None:
        self.reads = EventLog()

    def when_discovered(self, card: LoyaltyCard) -> None:
        self.reads.append((card.member, card.visits))
        self.toast(f"Welcome back, {card.member}! Visit #{card.visits + 1}")
        # Stamp the card: write the bumped counter back to the (emulated) tag.
        card.visits += 1
        card.save_async(
            on_saved=lambda c: self.toast(f"Card stamped: {c.visits} visits"),
            on_failed=lambda: self.toast("Stamping failed, tap again."),
        )


def card_message(member: str, visits: int) -> NdefMessage:
    payload = Gson().to_json({"member": member, "visits": visits}).encode()
    return NdefMessage([mime_record(thing_mime_type(LoyaltyCard), payload)])


def main() -> None:
    with Scenario() as scenario:
        customer = scenario.add_phone("customer")
        merchant = scenario.add_phone("merchant")
        terminal = scenario.start(merchant, MerchantTerminal)

        wallet = customer.start_service(
            HostCardEmulationService, argument=card_message("carol", 0)
        )
        print("Customer's phone now emulates a loyalty card (Type 4, ISO-DEP).")

        for visit in range(3):
            print(f"Visit {visit + 1}: customer taps the terminal...")
            scenario.pair(customer, merchant)
            assert wait_until(
                lambda v=visit: any(
                    f"Card stamped: {v + 1} visits" in t
                    for t in merchant.toasts.snapshot()
                )
            ), merchant.toasts.snapshot()
            scenario.unpair(customer, merchant)
            print(f"  terminal: {merchant.toasts.snapshot()[-1]}")

        # The stamps live on the emulated card, owned by the customer.
        final = wallet.card.read_ndef()
        print(f"Card now holds: {final[0].payload.decode()}")
        assert b'"visits": 3' in final[0].payload
        assert [v for _, v in terminal.reads.snapshot()] == [0, 1, 2]
        print("Loyalty card scenario OK.")


if __name__ == "__main__":
    main()
