#!/usr/bin/env python
"""Quickstart: the paper's section-3 text tag application.

A tiny app that shows the plain text stored on the last scanned RFID tag
and lets the "user" overwrite it -- built on MORENA's tag-reference layer
(TagDiscoverer + asynchronous read/write with listeners), driven against
the simulated radio environment.

Run:  python examples/quickstart.py
"""

from repro.concurrent import EventLog
from repro.core import (
    NFCActivity,
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
    TagDiscoverer,
)
from repro.harness import Scenario
from repro.ndef import NdefMessage, mime_record

TEXT_TYPE = "text/plain"


class TextTagApp(NFCActivity):
    """Shows tag text; 'save button' writes new text to the last tag."""

    def on_create(self) -> None:
        self.ui_text = ""  # what the EditText field would show
        self.events = EventLog()
        self.tag_reference = None
        self.discoverer = MyTagDiscoverer(
            self,
            TEXT_TYPE,
            NdefMessageToStringConverter(),
            StringToNdefMessageConverter(TEXT_TYPE),
        )

    # What the paper calls readTagAndUpdateUI.
    def read_tag_and_update_ui(self, reference) -> None:
        self.tag_reference = reference
        reference.read(
            on_read=self._handle_tag_read,
            on_failed=lambda ref: self.events.append(("read_failed", ref.uid_hex)),
        )

    def _handle_tag_read(self, reference) -> None:
        self.ui_text = reference.cached
        self.events.append(("shown", self.ui_text))

    # What the save-button OnClickListener does.
    def on_save_clicked(self, new_text: str) -> None:
        if self.tag_reference is None:
            self.toast("Scan a tag first.")
            return
        self.tag_reference.write(
            new_text,
            on_written=self._handle_tag_written,
            on_failed=lambda ref: self.events.append(("write_failed", ref.uid_hex)),
        )

    def _handle_tag_written(self, reference) -> None:
        self.ui_text = reference.cached
        self.events.append(("saved", self.ui_text))


class MyTagDiscoverer(TagDiscoverer):
    def on_tag_detected(self, reference) -> None:
        self.activity.read_tag_and_update_ui(reference)

    def on_tag_redetected(self, reference) -> None:
        self.activity.read_tag_and_update_ui(reference)


def main() -> None:
    with Scenario() as scenario:
        phone = scenario.add_phone("alice")
        app = scenario.start(phone, TextTagApp)

        tag = scenario.add_tag(
            content=NdefMessage([mime_record(TEXT_TYPE, b"hello from the sticker")])
        )

        print("User taps the tag...")
        scenario.put(tag, phone)
        assert app.events.wait_for(lambda e: any(x[0] == "shown" for x in e))
        print(f"  UI now shows: {app.ui_text!r}")

        print("User types new text and hits save (tag still in range)...")
        phone.main_looper.post(lambda: app.on_save_clicked("overwritten by MORENA"))
        assert app.events.wait_for(lambda e: any(x[0] == "saved" for x in e))
        print(f"  UI now shows: {app.ui_text!r}")
        print(f"  Tag physically holds: {tag.read_ndef()[0].payload.decode()!r}")

        print("User withdraws the tag, types again, hits save, re-taps later...")
        scenario.take(tag, phone)
        phone.main_looper.post(lambda: app.on_save_clicked("written on re-tap"))
        phone.sync()
        print("  (write is queued; no error, no blocked UI)")
        scenario.put(tag, phone)
        assert app.events.wait_for(
            lambda e: ("saved", "written on re-tap") in e
        )
        print(f"  Tag physically holds: {tag.read_ndef()[0].payload.decode()!r}")
        print("Quickstart OK.")


if __name__ == "__main__":
    main()
