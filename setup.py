"""Legacy setup shim: offline environments here lack the `wheel` package,
so editable installs must go through `setup.py develop` (--no-use-pep517)."""

from setuptools import setup

setup()
