"""Unit tests for external-type records and Android Application Records."""

import pytest

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.external import (
    AAR_TYPE,
    ExternalRecord,
    aar_package,
    aar_record,
    with_aar,
)
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.ndef.record import Tnf
from repro.ndef.rtd import TextRecord


class TestExternalRecord:
    def test_roundtrip(self):
        original = ExternalRecord("example.com:mytype", b"payload")
        decoded = ExternalRecord.from_record(original.to_record())
        assert decoded == original

    def test_type_normalized_to_lowercase(self):
        record = ExternalRecord("Example.COM:MyType", b"").to_record()
        assert record.type == b"example.com:mytype"

    def test_tnf_is_external(self):
        assert ExternalRecord("a.be:x").to_record().tnf == Tnf.EXTERNAL

    @pytest.mark.parametrize("bad", ["nocolon", ":noname", "nodomain:", "spa ce:x"])
    def test_invalid_type_rejected(self, bad):
        with pytest.raises(NdefEncodeError):
            ExternalRecord(bad).to_record()

    def test_decoding_wrong_tnf_rejected(self):
        with pytest.raises(NdefDecodeError):
            ExternalRecord.from_record(TextRecord("x").to_record())

    def test_empty_payload_allowed(self):
        decoded = ExternalRecord.from_record(ExternalRecord("a.be:t").to_record())
        assert decoded.payload == b""


class TestAar:
    def test_aar_record_shape(self):
        record = aar_record("com.example.app")
        assert record.tnf == Tnf.EXTERNAL
        assert record.type == AAR_TYPE.encode()
        assert record.payload == b"com.example.app"

    @pytest.mark.parametrize("bad", ["", "single", "1bad.start", "a..b", "a.b."])
    def test_invalid_package_rejected(self, bad):
        with pytest.raises(NdefEncodeError):
            aar_record(bad)

    def test_aar_package_extraction(self):
        message = NdefMessage([mime_record("a/b", b"x"), aar_record("com.a.b")])
        assert aar_package(message) == "com.a.b"

    def test_aar_package_missing(self):
        assert aar_package(NdefMessage([mime_record("a/b", b"x")])) == ""

    def test_first_aar_wins(self):
        message = NdefMessage([aar_record("com.first.app"), aar_record("com.second.app")])
        assert aar_package(message) == "com.first.app"

    def test_with_aar_appends(self):
        message = NdefMessage([mime_record("a/b", b"data")])
        tagged = with_aar(message, "com.example.app")
        assert aar_package(tagged) == "com.example.app"
        assert tagged[0] == message[0]  # data record stays first

    def test_with_aar_replaces_existing(self):
        message = with_aar(NdefMessage([mime_record("a/b", b"x")]), "com.old.app")
        replaced = with_aar(message, "com.new.app")
        assert aar_package(replaced) == "com.new.app"
        aar_count = sum(1 for r in replaced if r.type == AAR_TYPE.encode())
        assert aar_count == 1

    def test_aar_survives_tag_storage(self):
        from repro.tags.factory import make_tag

        message = with_aar(NdefMessage([mime_record("a/b", b"x")]), "com.app.one")
        tag = make_tag(content=message)
        assert aar_package(tag.read_ndef()) == "com.app.one"

    def test_aar_does_not_change_dispatch_mime(self):
        from repro.ndef.mime import message_mime_type

        message = with_aar(NdefMessage([mime_record("a/b", b"x")]), "com.app.one")
        assert message_mime_type(message) == "a/b"
