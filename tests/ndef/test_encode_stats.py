"""EncodeStats: counting semantics and thread safety.

The counters are process-wide and bumped from reactor workers, beamer
threads and loopers concurrently; losing increments under contention
would silently understate cache effectiveness in the benches.
"""

import threading

from repro.ndef import ENCODE_STATS, NdefMessage
from repro.ndef.mime import mime_record
from repro.ndef.record import EncodeStats


class TestCountingSemantics:
    def test_fresh_stats_are_zero(self):
        stats = EncodeStats()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.hit_ratio == 0.0
        assert stats.snapshot() == (0, 0)

    def test_hit_miss_and_reset(self):
        stats = EncodeStats()
        stats.miss()
        stats.hit()
        stats.hit()
        assert stats.snapshot() == (2, 1)
        assert abs(stats.hit_ratio - 2 / 3) < 1e-9
        assert repr(stats) == "EncodeStats(hits=2, misses=1)"
        stats.reset()
        assert stats.snapshot() == (0, 0)

    def test_message_encode_feeds_the_global_stats(self):
        ENCODE_STATS.reset()
        message = NdefMessage([mime_record("text/plain", b"payload")])
        message.to_bytes()
        hits, misses = ENCODE_STATS.snapshot()
        assert misses >= 1  # fresh message + fresh record
        first_hits = hits
        message.to_bytes()
        assert ENCODE_STATS.hits == first_hits + 1
        assert ENCODE_STATS.misses == misses  # memoized, no re-encode


class TestThreadSafety:
    def test_no_increment_is_lost_under_contention(self):
        stats = EncodeStats()
        threads = 8
        per_thread = 5000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for index in range(per_thread):
                if index % 2:
                    stats.hit()
                else:
                    stats.miss()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        expected = threads * per_thread // 2
        assert stats.snapshot() == (expected, expected)

    def test_concurrent_encoding_counts_exactly(self):
        ENCODE_STATS.reset()
        message = NdefMessage([mime_record("text/plain", b"shared")])
        message.to_bytes()  # settle the memo single-threaded
        _hits_before, misses_before = ENCODE_STATS.snapshot()
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def encode():
            barrier.wait()
            for _ in range(per_thread):
                message.to_bytes()

        workers = [threading.Thread(target=encode) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        hits, misses = ENCODE_STATS.snapshot()
        assert misses == misses_before  # every concurrent encode was a hit
        assert hits >= threads * per_thread
