"""Unit tests for the semantic NDEF validation pass."""

import pytest

from repro.errors import NdefValidationError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.rtd import TextRecord, UriRecord
from repro.ndef.validation import (
    message_problems,
    record_problems,
    validate_message,
    validate_record,
)


class TestRecordProblems:
    def test_clean_mime_record(self):
        assert record_problems(mime_record("a/b", b"x")) == []

    def test_clean_text_record(self):
        assert record_problems(TextRecord("x").to_record()) == []

    def test_clean_uri_record(self):
        assert record_problems(UriRecord("tel:1").to_record()) == []

    def test_bad_mime_type_flagged(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"no-slash-here", b"", b"")
        problems = record_problems(record)
        assert len(problems) == 1
        assert "token/token" in problems[0]

    def test_non_ascii_mime_type_flagged(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"\xff/\xfe", b"", b"")
        assert record_problems(record)

    def test_malformed_text_record_flagged(self):
        record = NdefRecord(Tnf.WELL_KNOWN, b"T", b"", b"")
        problems = record_problems(record)
        assert any("T record" in p for p in problems)

    def test_malformed_uri_record_flagged(self):
        record = NdefRecord(Tnf.WELL_KNOWN, b"U", b"", bytes([0xF0]) + b"x")
        assert record_problems(record)

    def test_unknown_well_known_type_passes(self):
        record = NdefRecord(Tnf.WELL_KNOWN, b"Zz", b"", b"whatever")
        assert record_problems(record) == []

    def test_empty_record_passes(self):
        assert record_problems(NdefRecord.empty()) == []


class TestMessageProblems:
    def test_clean_message(self):
        message = NdefMessage([mime_record("a/b", b""), TextRecord("x").to_record()])
        assert message_problems(message) == []

    def test_problem_reports_record_index(self):
        message = NdefMessage(
            [mime_record("a/b", b""), NdefRecord(Tnf.MIME_MEDIA, b"bad", b"", b"")]
        )
        problems = message_problems(message)
        assert problems and problems[0].startswith("record 1:")


class TestStrictValidation:
    def test_validate_record_raises(self):
        with pytest.raises(NdefValidationError):
            validate_record(NdefRecord(Tnf.MIME_MEDIA, b"bad", b"", b""))

    def test_validate_record_passes(self):
        validate_record(mime_record("a/b", b""))

    def test_validate_message_raises(self):
        message = NdefMessage([NdefRecord(Tnf.WELL_KNOWN, b"T", b"", b"")])
        with pytest.raises(NdefValidationError):
            validate_message(message)

    def test_validate_message_passes(self):
        validate_message(NdefMessage([mime_record("a/b", b"x")]))
