"""Unit tests for NDEF record encoding/decoding and validity rules."""

import pytest

from repro.errors import NdefDecodeError, NdefEncodeError, NdefValidationError
from repro.ndef.record import (
    FLAG_CF,
    FLAG_IL,
    FLAG_MB,
    FLAG_ME,
    FLAG_SR,
    NdefRecord,
    Tnf,
    encode_record_raw,
    iter_raw_records,
)


class TestConstruction:
    def test_mime_record_roundtrips_fields(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"text/plain", b"id1", b"payload")
        assert record.tnf == Tnf.MIME_MEDIA
        assert record.type == b"text/plain"
        assert record.id == b"id1"
        assert record.payload == b"payload"

    def test_records_are_immutable(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"text/plain", b"", b"x")
        with pytest.raises(Exception):
            record.payload = b"other"

    def test_empty_record_constructor(self):
        record = NdefRecord.empty()
        assert record.is_empty
        assert record.tnf == Tnf.EMPTY

    def test_empty_with_payload_rejected(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.EMPTY, payload=b"data")

    def test_empty_with_type_rejected(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.EMPTY, type=b"T")

    def test_unknown_must_not_carry_type(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.UNKNOWN, type=b"T")

    def test_unknown_with_payload_allowed(self):
        record = NdefRecord(Tnf.UNKNOWN, payload=b"mystery")
        assert record.payload == b"mystery"

    def test_unchanged_rejected_as_logical_record(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.UNCHANGED)

    def test_reserved_tnf_rejected(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.RESERVED)

    def test_well_known_requires_type(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.WELL_KNOWN, type=b"")

    def test_mime_requires_type(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.MIME_MEDIA)

    def test_type_longer_than_255_rejected(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.MIME_MEDIA, type=b"x" * 256)

    def test_id_longer_than_255_rejected(self):
        with pytest.raises(NdefValidationError):
            NdefRecord(Tnf.MIME_MEDIA, type=b"a/b", id=b"x" * 256)

    def test_tnf_coerced_to_enum(self):
        record = NdefRecord(2, b"a/b", b"", b"")
        assert record.tnf is Tnf.MIME_MEDIA


class TestEncoding:
    def test_short_record_flag_set_for_small_payload(self):
        data = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"x" * 255).to_bytes()
        assert data[0] & FLAG_SR

    def test_long_record_uses_4_byte_length(self):
        payload = b"x" * 256
        data = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", payload).to_bytes()
        assert not data[0] & FLAG_SR
        assert int.from_bytes(data[2:6], "big") == 256

    def test_il_flag_only_with_id(self):
        without = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"x").to_bytes()
        with_id = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"i", b"x").to_bytes()
        assert not without[0] & FLAG_IL
        assert with_id[0] & FLAG_IL

    def test_mb_me_flags_follow_arguments(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"x")
        both = record.to_bytes(message_begin=True, message_end=True)
        neither = record.to_bytes(message_begin=False, message_end=False)
        assert both[0] & FLAG_MB and both[0] & FLAG_ME
        assert not neither[0] & FLAG_MB and not neither[0] & FLAG_ME

    def test_len_matches_encoded_size(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"text/plain", b"id", b"x" * 100)
        assert len(record) == len(record.to_bytes())

    def test_len_matches_encoded_size_long_payload(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"y" * 300)
        assert len(record) == len(record.to_bytes())

    def test_encode_raw_rejects_oversized_type(self):
        with pytest.raises(NdefEncodeError):
            encode_record_raw(
                Tnf.MIME_MEDIA, b"x" * 256, b"", b"", True, True, False
            )


class TestChunking:
    def test_single_chunk_when_payload_fits(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"abc")
        assert record.to_chunks(10) == record.to_bytes()

    def test_chunked_encoding_sets_cf_on_all_but_last(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"abcdefgh")
        raws = list(iter_raw_records(record.to_chunks(3)))
        assert len(raws) == 3
        assert [raw.chunk_flag for raw in raws] == [True, True, False]

    def test_chunks_after_first_use_unchanged_tnf(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"abcdefgh")
        raws = list(iter_raw_records(record.to_chunks(3)))
        assert raws[0].tnf == Tnf.MIME_MEDIA
        assert raws[1].tnf == Tnf.UNCHANGED
        assert raws[2].tnf == Tnf.UNCHANGED

    def test_chunks_after_first_have_no_type(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"abcdef")
        raws = list(iter_raw_records(record.to_chunks(2)))
        assert raws[0].type == b"a/b"
        assert all(raw.type == b"" for raw in raws[1:])

    def test_empty_record_cannot_be_chunked(self):
        with pytest.raises(NdefEncodeError):
            NdefRecord.empty().to_chunks(4)

    def test_chunk_size_must_be_positive(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"abc")
        with pytest.raises(NdefEncodeError):
            record.to_chunks(0)

    def test_zero_length_payload_encodes_one_record(self):
        """Regression: an empty payload must yield one (empty) record,
        not zero records -- ``range(0, 0, n)`` produces nothing."""
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"")
        data = record.to_chunks(16)
        raws = list(iter_raw_records(data))
        assert len(raws) == 1
        assert raws[0].payload == b""
        assert not raws[0].chunk_flag

    def test_zero_length_payload_chunks_round_trip(self):
        from repro.ndef.message import NdefMessage

        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"rec-id", b"")
        for chunk_size in (1, 4, 255):
            decoded = NdefMessage.from_bytes(record.to_chunks(chunk_size))
            assert list(decoded) == [record]

    def test_zero_length_payload_chunks_equal_plain_encoding(self):
        record = NdefRecord(Tnf.UNKNOWN, b"", b"", b"")
        assert record.to_chunks(8) == record.to_bytes()


class TestRawDecoding:
    def test_truncated_header_raises(self):
        with pytest.raises(NdefDecodeError):
            list(iter_raw_records(b"\xd2"))

    def test_truncated_payload_raises(self):
        good = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"hello").to_bytes()
        with pytest.raises(NdefDecodeError):
            list(iter_raw_records(good[:-2]))

    def test_empty_bytes_raise(self):
        with pytest.raises(NdefDecodeError):
            list(iter_raw_records(b""))

    def test_reserved_tnf_raises(self):
        header = bytes([FLAG_MB | FLAG_ME | FLAG_SR | 0x07, 0, 0])
        with pytest.raises(NdefDecodeError):
            list(iter_raw_records(header))

    def test_decode_reports_offset_of_bad_record(self):
        first = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"x").to_bytes(
            message_begin=True, message_end=False
        )
        with pytest.raises(NdefDecodeError) as excinfo:
            list(iter_raw_records(first + b"\xff"))
        assert str(len(first)) in str(excinfo.value)
