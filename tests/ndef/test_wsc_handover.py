"""Tests for WiFi Simple Config and Connection Handover records."""

import pytest

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.handover import (
    CPS_ACTIVE,
    CPS_INACTIVE,
    AlternativeCarrier,
    build_handover_select,
    parse_handover_select,
)
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.wsc import (
    ATTR_CREDENTIAL,
    WSC_MIME_TYPE,
    WifiCredential,
    encode_attribute,
    iter_attributes,
)


class TestWscAttributes:
    def test_attribute_roundtrip(self):
        data = encode_attribute(0x1045, b"my-network")
        decoded = list(iter_attributes(data))
        assert decoded == [(0x1045, b"my-network")]

    def test_multiple_attributes(self):
        data = encode_attribute(0x1045, b"net") + encode_attribute(0x1027, b"key")
        assert len(list(iter_attributes(data))) == 2

    def test_truncated_header_rejected(self):
        with pytest.raises(NdefDecodeError):
            list(iter_attributes(b"\x10\x45\x00"))

    def test_truncated_value_rejected(self):
        with pytest.raises(NdefDecodeError):
            list(iter_attributes(b"\x10\x45\x00\x05ab"))


class TestWifiCredential:
    def test_roundtrip(self):
        credential = WifiCredential(ssid="corpnet", key="s3cret")
        decoded = WifiCredential.from_record(credential.to_record())
        assert decoded == credential

    def test_record_mime_type(self):
        record = WifiCredential("n", "k").to_record()
        assert record.type == WSC_MIME_TYPE.encode()

    def test_auth_and_encryption_roundtrip(self):
        credential = WifiCredential(
            ssid="open-net", key="", auth="open", encryption="none"
        )
        decoded = WifiCredential.from_record(credential.to_record())
        assert decoded.auth == "open"
        assert decoded.encryption == "none"

    def test_unknown_auth_rejected(self):
        with pytest.raises(NdefEncodeError):
            WifiCredential("n", "k", auth="wep-hope").to_record()

    def test_wrong_record_type_rejected(self):
        with pytest.raises(NdefDecodeError):
            WifiCredential.from_record(mime_record("a/b", b""))

    def test_credential_without_ssid_rejected(self):
        payload = encode_attribute(ATTR_CREDENTIAL, b"")
        record = mime_record(WSC_MIME_TYPE, payload)
        with pytest.raises(NdefDecodeError):
            WifiCredential.from_record(record)

    def test_record_without_credential_rejected(self):
        record = mime_record(WSC_MIME_TYPE, encode_attribute(0x1045, b"bare"))
        with pytest.raises(NdefDecodeError):
            WifiCredential.from_record(record)

    def test_unicode_ssid(self):
        credential = WifiCredential(ssid="café-wlan", key="k")
        assert WifiCredential.from_record(credential.to_record()).ssid == "café-wlan"


class TestAlternativeCarrier:
    def test_roundtrip(self):
        carrier = AlternativeCarrier(carrier_reference=b"0", power_state=CPS_ACTIVE)
        decoded = AlternativeCarrier.from_record(carrier.to_record())
        assert decoded == carrier

    def test_power_state_validated(self):
        with pytest.raises(NdefEncodeError):
            AlternativeCarrier(b"0", power_state=7).to_record()

    def test_empty_reference_rejected(self):
        with pytest.raises(NdefEncodeError):
            AlternativeCarrier(b"").to_record()

    def test_wrong_record_rejected(self):
        with pytest.raises(NdefDecodeError):
            AlternativeCarrier.from_record(mime_record("a/b", b""))


class TestHandoverSelect:
    def carrier(self, record_id=b"0"):
        bare = WifiCredential("net", "key").to_record()
        return NdefRecord(bare.tnf, bare.type, record_id, bare.payload)

    def test_build_and_parse(self):
        message = build_handover_select([(self.carrier(), CPS_ACTIVE)])
        assert message[0].type == b"Hs"
        parsed = parse_handover_select(message)
        assert parsed.version == 0x12
        assert len(parsed.carriers) == 1
        ac, record = parsed.carriers[0]
        assert ac.power_state == CPS_ACTIVE
        assert record is not None
        assert WifiCredential.from_record(record).ssid == "net"

    def test_multiple_carriers(self):
        bluetooth = NdefRecord(
            Tnf.MIME_MEDIA,
            b"application/vnd.bluetooth.ep.oob",
            b"1",
            b"\x00\x00",
        )
        message = build_handover_select(
            [(self.carrier(b"0"), CPS_ACTIVE), (bluetooth, CPS_INACTIVE)]
        )
        parsed = parse_handover_select(message)
        assert len(parsed.carriers) == 2
        assert parsed.carriers[1][0].power_state == CPS_INACTIVE

    def test_carrier_without_id_rejected(self):
        bare = WifiCredential("net", "key").to_record()
        with pytest.raises(NdefEncodeError):
            build_handover_select([(bare, CPS_ACTIVE)])

    def test_empty_carrier_list_rejected(self):
        with pytest.raises(NdefEncodeError):
            build_handover_select([])

    def test_parse_non_handover_rejected(self):
        with pytest.raises(NdefDecodeError):
            parse_handover_select(NdefMessage([mime_record("a/b", b"")]))

    def test_dangling_reference_resolves_to_none(self):
        message = build_handover_select([(self.carrier(b"0"), CPS_ACTIVE)])
        without_carrier = NdefMessage([message[0]])
        parsed = parse_handover_select(without_carrier)
        assert parsed.carriers[0][1] is None
        assert parsed.carrier_records() == []

    def test_handover_message_fits_ntag213(self):
        from repro.tags.factory import make_tag

        message = build_handover_select([(self.carrier(), CPS_ACTIVE)])
        tag = make_tag("NTAG213", content=message)
        assert tag.read_ndef() == message
