"""Table-driven adversarial wire inputs: hostile bytes fail *typed*.

Every entry is one crafted malformed wire image and the contract is
uniform: decoding raises :class:`NdefDecodeError` -- never
``IndexError``, ``OverflowError``, ``UnicodeDecodeError`` or a leaked
:class:`NdefValidationError`. The tables double as documentation of the
attack shapes the replay fuzzer (:mod:`repro.harness.fuzz`) mutates
toward.
"""

import pytest

from repro.errors import NdefDecodeError
from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.rtd import SmartPosterRecord, TextRecord, UriRecord

T = ord("T")
U = ord("U")

# (name, wire bytes) -- every one must raise NdefDecodeError from from_bytes.
MALFORMED_WIRE = [
    (
        "short-length-exceeds-buffer",
        # SR payload length claims 255 bytes; only 2 present.
        bytes([0xD1, 0x01, 0xFF, T, 0x65, 0x6E]),
    ),
    (
        "long-length-exceeds-buffer",
        # 4-byte payload length claims ~4 GiB; nothing behind it.
        bytes([0xC1, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, T]),
    ),
    (
        "long-length-truncated-itself",
        # SR cleared, so 4 length bytes are required -- only 2 present.
        bytes([0xC1, 0x01, 0x00, 0x00]),
    ),
    (
        "unchanged-tnf-outside-chunks",
        bytes([0xD6, 0x00, 0x00]),
    ),
    (
        "unchanged-tnf-first-of-two",
        # UNCHANGED on the first record, a valid record after it.
        bytes([0x96, 0x00, 0x00]) + bytes([0x55, 0x00, 0x00]),
    ),
    (
        "reserved-tnf",
        bytes([0xD7, 0x00, 0x00]),
    ),
    (
        "chunk-without-terminator",
        # CF set, ME never arrives on a final chunk.
        bytes([0xB1, 0x01, 0x01, T, 0x80]),
    ),
    (
        "chunk-continuation-with-type",
        # First chunk, then an UNCHANGED chunk illegally carrying a type.
        bytes([0xB2, 0x03, 0x01, ord("a"), ord("/"), ord("b"), 0x78])
        + bytes([0x56, 0x01, 0x01, ord("x"), 0x79]),
    ),
    (
        "missing-message-begin",
        bytes([0x51, 0x01, 0x00, T]),
    ),
    (
        "message-begin-twice",
        bytes([0x91, 0x01, 0x00, T]) + bytes([0xD1, 0x01, 0x00, T]),
    ),
    (
        "missing-message-end",
        bytes([0x91, 0x01, 0x00, T]),
    ),
    (
        "empty-input",
        b"",
    ),
    (
        "empty-tnf-with-payload",
        # Structurally fine; violates the EMPTY-carries-nothing rule.
        # Regression: NdefValidationError used to leak from from_bytes.
        bytes([0xD0, 0x00, 0x03]) + b"abc",
    ),
    (
        "well-known-without-type",
        bytes([0xD1, 0x00, 0x01, 0x78]),
    ),
]


@pytest.mark.parametrize(
    "data", [case for _, case in MALFORMED_WIRE], ids=[n for n, _ in MALFORMED_WIRE]
)
def test_malformed_wire_raises_decode_error(data):
    with pytest.raises(NdefDecodeError):
        NdefMessage.from_bytes(data)


def wk(payload: bytes, rtd: bytes) -> NdefRecord:
    return NdefRecord(Tnf.WELL_KNOWN, rtd, b"", payload)


# (name, parser, record) -- typed RTD parsers on hostile payloads.
MALFORMED_RTD = [
    (
        "text-empty-payload",
        TextRecord.from_record,
        wk(b"", b"T"),
    ),
    (
        "text-truncated-language",
        # Status byte claims a 63-byte language code; payload ends.
        TextRecord.from_record,
        wk(bytes([0x3F]) + b"en", b"T"),
    ),
    (
        "text-non-ascii-language",
        # Regression: UnicodeDecodeError used to escape.
        TextRecord.from_record,
        wk(bytes([0x02, 0xFF, 0xFE]) + b"hi", b"T"),
    ),
    (
        "text-invalid-utf8-body",
        # Regression: UnicodeDecodeError used to escape.
        TextRecord.from_record,
        wk(bytes([0x02]) + b"en" + b"\xff\xfe\xfd", b"T"),
    ),
    (
        "text-invalid-utf16-body",
        TextRecord.from_record,
        wk(bytes([0x82]) + b"en" + b"\x00", b"T"),  # odd-length UTF-16
    ),
    (
        "uri-empty-payload",
        UriRecord.from_record,
        wk(b"", b"U"),
    ),
    (
        "uri-reserved-identifier-code",
        UriRecord.from_record,
        wk(bytes([0x30]) + b"x", b"U"),  # 0x30 > highest defined code
    ),
    (
        "uri-invalid-utf8-remainder",
        # Regression: UnicodeDecodeError used to escape.
        UriRecord.from_record,
        wk(bytes([0x01, 0xFF]), b"U"),
    ),
    (
        "smart-poster-garbage-inner-message",
        SmartPosterRecord.from_record,
        wk(b"\xff\xff\xff", b"Sp"),
    ),
    (
        "smart-poster-without-uri",
        SmartPosterRecord.from_record,
        wk(NdefMessage([TextRecord("t").to_record()]).to_bytes(), b"Sp"),
    ),
]


@pytest.mark.parametrize(
    "parser, record",
    [(p, r) for _, p, r in MALFORMED_RTD],
    ids=[n for n, _, _ in MALFORMED_RTD],
)
def test_malformed_rtd_raises_decode_error(parser, record):
    with pytest.raises(NdefDecodeError):
        parser(record)


class TestDecodeErrorsAreDiagnosable:
    def test_truncation_error_names_the_offset(self):
        with pytest.raises(NdefDecodeError, match="byte 0"):
            NdefMessage.from_bytes(bytes([0xD1, 0x01, 0xFF, T]))

    def test_validation_leak_is_wrapped_with_offset(self):
        with pytest.raises(NdefDecodeError, match="byte 0.*NDEF rules"):
            NdefMessage.from_bytes(bytes([0xD0, 0x00, 0x03]) + b"abc")

    def test_validation_error_keeps_cause_chain(self):
        from repro.errors import NdefValidationError

        try:
            NdefMessage.from_bytes(bytes([0xD0, 0x00, 0x03]) + b"abc")
        except NdefDecodeError as exc:
            assert isinstance(exc.__cause__, NdefValidationError)
        else:
            pytest.fail("expected NdefDecodeError")
