"""Unit tests for the well-known record types (Text, URI, Smart Poster)."""

import pytest

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.rtd import (
    URI_PREFIXES,
    SmartPosterRecord,
    TextRecord,
    UriRecord,
)


class TestTextRecord:
    def test_utf8_roundtrip(self):
        original = TextRecord("héllo wörld", language="de")
        decoded = TextRecord.from_record(original.to_record())
        assert decoded == original

    def test_utf16_roundtrip(self):
        original = TextRecord("snowman ☃", language="en", utf16=True)
        decoded = TextRecord.from_record(original.to_record())
        assert decoded.text == original.text
        assert decoded.utf16

    def test_default_language_is_en(self):
        assert TextRecord("x").language == "en"

    def test_status_byte_encodes_language_length(self):
        record = TextRecord("x", language="nl-BE").to_record()
        assert record.payload[0] == len(b"nl-BE")

    def test_language_too_long_rejected(self):
        with pytest.raises(NdefEncodeError):
            TextRecord("x", language="a" * 64).to_record()

    def test_empty_language_rejected(self):
        with pytest.raises(NdefEncodeError):
            TextRecord("x", language="").to_record()

    def test_decoding_wrong_type_raises(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"a/b", b"", b"x")
        with pytest.raises(NdefDecodeError):
            TextRecord.from_record(record)

    def test_decoding_empty_payload_raises(self):
        record = NdefRecord(Tnf.WELL_KNOWN, b"T", b"", b"")
        with pytest.raises(NdefDecodeError):
            TextRecord.from_record(record)

    def test_decoding_truncated_language_raises(self):
        record = NdefRecord(Tnf.WELL_KNOWN, b"T", b"", bytes([10]) + b"en")
        with pytest.raises(NdefDecodeError):
            TextRecord.from_record(record)

    def test_empty_text_roundtrip(self):
        decoded = TextRecord.from_record(TextRecord("").to_record())
        assert decoded.text == ""


class TestUriRecord:
    @pytest.mark.parametrize(
        "uri",
        [
            "https://www.example.com",
            "http://example.com/path?q=1",
            "mailto:someone@example.org",
            "tel:+3225551234",
            "urn:epc:id:sgtin:0614141",
            "custom-scheme:opaque",
        ],
    )
    def test_roundtrip(self, uri):
        assert UriRecord.from_record(UriRecord(uri).to_record()).uri == uri

    def test_longest_prefix_wins(self):
        record = UriRecord("https://www.example.com").to_record()
        assert record.payload[0] == URI_PREFIXES.index("https://www.")

    def test_unknown_scheme_uses_code_zero(self):
        record = UriRecord("custom-scheme:opaque").to_record()
        assert record.payload[0] == 0

    def test_reserved_identifier_code_rejected(self):
        record = NdefRecord(Tnf.WELL_KNOWN, b"U", b"", bytes([0xFE]) + b"x")
        with pytest.raises(NdefDecodeError):
            UriRecord.from_record(record)

    def test_empty_payload_rejected(self):
        record = NdefRecord(Tnf.WELL_KNOWN, b"U", b"", b"")
        with pytest.raises(NdefDecodeError):
            UriRecord.from_record(record)

    def test_wrong_type_rejected(self):
        with pytest.raises(NdefDecodeError):
            UriRecord.from_record(TextRecord("x").to_record())


class TestSmartPoster:
    def test_full_roundtrip(self):
        poster = SmartPosterRecord(
            uri="https://example.com/menu",
            titles={"en": "Menu", "fr": "Carte"},
            action=1,
        )
        decoded = SmartPosterRecord.from_record(poster.to_record())
        assert decoded == poster

    def test_uri_only_roundtrip(self):
        poster = SmartPosterRecord(uri="tel:123")
        decoded = SmartPosterRecord.from_record(poster.to_record())
        assert decoded.uri == "tel:123"
        assert decoded.titles is None
        assert decoded.action is None

    def test_missing_uri_rejected(self):
        from repro.ndef.message import NdefMessage

        inner = NdefMessage([TextRecord("no uri here").to_record()])
        record = NdefRecord(Tnf.WELL_KNOWN, b"Sp", b"", inner.to_bytes())
        with pytest.raises(NdefDecodeError):
            SmartPosterRecord.from_record(record)

    def test_double_uri_rejected(self):
        from repro.ndef.message import NdefMessage

        inner = NdefMessage(
            [UriRecord("tel:1").to_record(), UriRecord("tel:2").to_record()]
        )
        record = NdefRecord(Tnf.WELL_KNOWN, b"Sp", b"", inner.to_bytes())
        with pytest.raises(NdefDecodeError):
            SmartPosterRecord.from_record(record)

    def test_action_out_of_range_rejected(self):
        with pytest.raises(NdefEncodeError):
            SmartPosterRecord(uri="tel:1", action=256).to_record()

    def test_foreign_inner_records_ignored(self):
        from repro.ndef.message import NdefMessage

        inner = NdefMessage(
            [
                UriRecord("tel:1").to_record(),
                NdefRecord(Tnf.MIME_MEDIA, b"x/y", b"", b"opaque"),
            ]
        )
        record = NdefRecord(Tnf.WELL_KNOWN, b"Sp", b"", inner.to_bytes())
        assert SmartPosterRecord.from_record(record).uri == "tel:1"
