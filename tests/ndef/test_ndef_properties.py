"""Property-based tests for the NDEF codec (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.rtd import TextRecord, UriRecord

# Strategies ------------------------------------------------------------------

mime_types = st.from_regex(r"[a-z0-9.+-]{1,20}/[a-z0-9.+-]{1,20}", fullmatch=True)

payloads = st.binary(max_size=600)
ids = st.binary(max_size=32)


@st.composite
def records(draw):
    tnf = draw(
        st.sampled_from(
            [Tnf.WELL_KNOWN, Tnf.MIME_MEDIA, Tnf.ABSOLUTE_URI, Tnf.EXTERNAL, Tnf.UNKNOWN]
        )
    )
    if tnf == Tnf.UNKNOWN:
        type_ = b""
    else:
        type_ = draw(st.binary(min_size=1, max_size=40))
    return NdefRecord(tnf, type_, draw(ids), draw(payloads))


messages = st.lists(records(), min_size=1, max_size=5).map(NdefMessage)


# Round-trip properties -----------------------------------------------------------


@given(messages)
@settings(max_examples=150)
def test_message_bytes_roundtrip(message):
    assert NdefMessage.from_bytes(message.to_bytes()) == message


@given(messages)
def test_byte_length_is_exact(message):
    assert message.byte_length == len(message.to_bytes())


@given(records(), st.integers(min_value=1, max_value=64))
def test_chunked_encoding_reassembles(record, chunk_size):
    data = record.to_chunks(chunk_size)
    decoded = NdefMessage.from_bytes(data)
    assert len(decoded) == 1
    assert decoded[0] == record


@given(st.text(max_size=200), st.sampled_from(["en", "de", "nl-BE", "ja"]))
def test_text_record_roundtrip(text, language):
    original = TextRecord(text, language=language)
    assert TextRecord.from_record(original.to_record()) == original


@given(st.text(max_size=200))
def test_text_record_utf16_roundtrip(text):
    original = TextRecord(text, utf16=True)
    decoded = TextRecord.from_record(original.to_record())
    assert decoded.text == text


uri_bodies = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=80
)


@given(st.sampled_from(["", "https://www.", "mailto:", "tel:", "urn:nfc:"]), uri_bodies)
def test_uri_record_roundtrip(prefix, body):
    uri = prefix + body
    if not uri:
        return
    assert UriRecord.from_record(UriRecord(uri).to_record()).uri == uri


@given(messages)
def test_decoding_is_deterministic(message):
    data = message.to_bytes()
    assert NdefMessage.from_bytes(data) == NdefMessage.from_bytes(data)


@given(st.lists(records(), min_size=1, max_size=4))
def test_concatenated_records_frame_correctly(record_list):
    """Manual framing (MB on first, ME on last) decodes to the same records."""
    parts = []
    last = len(record_list) - 1
    for index, record in enumerate(record_list):
        parts.append(record.to_bytes(message_begin=index == 0, message_end=index == last))
    decoded = NdefMessage.from_bytes(b"".join(parts))
    assert list(decoded) == record_list
