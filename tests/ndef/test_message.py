"""Unit tests for NDEF message framing and chunk reassembly."""

import pytest

from repro.errors import NdefDecodeError, NdefEncodeError
from repro.ndef.message import NdefMessage
from repro.ndef.record import FLAG_MB, FLAG_ME, NdefRecord, Tnf


def mime(payload: bytes, type_: bytes = b"a/b") -> NdefRecord:
    return NdefRecord(Tnf.MIME_MEDIA, type_, b"", payload)


class TestConstruction:
    def test_message_requires_at_least_one_record(self):
        with pytest.raises(NdefEncodeError):
            NdefMessage([])

    def test_message_rejects_non_records(self):
        with pytest.raises(TypeError):
            NdefMessage([b"not a record"])

    def test_iteration_and_indexing(self):
        records = [mime(b"a"), mime(b"b"), mime(b"c")]
        message = NdefMessage(records)
        assert list(message) == records
        assert message[1].payload == b"b"
        assert len(message) == 3

    def test_equality_and_hash(self):
        one = NdefMessage([mime(b"x")])
        two = NdefMessage([mime(b"x")])
        assert one == two
        assert hash(one) == hash(two)
        assert one != NdefMessage([mime(b"y")])

    def test_empty_message_helper(self):
        message = NdefMessage.empty()
        assert message.is_empty
        assert len(message) == 1

    def test_nonempty_message_is_not_empty(self):
        assert not NdefMessage([mime(b"x")]).is_empty


class TestFraming:
    def test_single_record_roundtrip(self):
        message = NdefMessage([mime(b"hello")])
        assert NdefMessage.from_bytes(message.to_bytes()) == message

    def test_multi_record_roundtrip_preserves_order(self):
        message = NdefMessage([mime(b"1"), mime(b"2", b"c/d"), mime(b"3")])
        decoded = NdefMessage.from_bytes(message.to_bytes())
        assert [r.payload for r in decoded] == [b"1", b"2", b"3"]

    def test_mb_only_on_first_me_only_on_last(self):
        message = NdefMessage([mime(b"1"), mime(b"2")])
        data = message.to_bytes()
        first_header = data[0]
        assert first_header & FLAG_MB and not first_header & FLAG_ME
        # Find the second record's header: after the first record.
        offset = len(message[0])
        second_header = data[offset]
        assert second_header & FLAG_ME and not second_header & FLAG_MB

    def test_missing_mb_rejected(self):
        record = mime(b"x")
        data = record.to_bytes(message_begin=False, message_end=True)
        with pytest.raises(NdefDecodeError):
            NdefMessage.from_bytes(data)

    def test_missing_me_rejected(self):
        record = mime(b"x")
        data = record.to_bytes(message_begin=True, message_end=False)
        with pytest.raises(NdefDecodeError):
            NdefMessage.from_bytes(data)

    def test_me_in_middle_rejected(self):
        a = mime(b"1").to_bytes(message_begin=True, message_end=True)
        b = mime(b"2").to_bytes(message_begin=False, message_end=True)
        with pytest.raises(NdefDecodeError):
            NdefMessage.from_bytes(a + b)

    def test_mb_in_middle_rejected(self):
        a = mime(b"1").to_bytes(message_begin=True, message_end=False)
        b = mime(b"2").to_bytes(message_begin=True, message_end=True)
        with pytest.raises(NdefDecodeError):
            NdefMessage.from_bytes(a + b)

    def test_byte_length_matches_encoding(self):
        message = NdefMessage([mime(b"abc"), mime(b"x" * 300)])
        assert message.byte_length == len(message.to_bytes())


class TestChunkReassembly:
    def test_chunked_record_reassembles(self):
        record = mime(b"the quick brown fox jumps over the lazy dog")
        data = record.to_chunks(5)
        decoded = NdefMessage.from_bytes(data)
        assert len(decoded) == 1
        assert decoded[0] == record

    def test_chunked_record_with_empty_tail_chunk(self):
        record = mime(b"abcdef")
        data = record.to_chunks(3)  # exactly two full chunks
        assert NdefMessage.from_bytes(data)[0] == record

    def test_chunked_then_plain_record(self):
        chunked = mime(b"abcdefgh").to_chunks(3, message_begin=True, message_end=False)
        plain = mime(b"tail").to_bytes(message_begin=False, message_end=True)
        decoded = NdefMessage.from_bytes(chunked + plain)
        assert [r.payload for r in decoded] == [b"abcdefgh", b"tail"]

    def test_unterminated_chunk_sequence_rejected(self):
        record = mime(b"abcdefgh")
        data = record.to_chunks(3)
        # Drop the final chunk: find it by re-encoding without the last piece.
        truncated = mime(b"abcdef").to_chunks(3, message_begin=True, message_end=True)
        # Make the last chunk claim more follows (CF set on every chunk).
        from repro.ndef.record import encode_record_raw

        bad = encode_record_raw(
            Tnf.MIME_MEDIA, b"a/b", b"", b"abc", True, False, True
        ) + encode_record_raw(Tnf.UNCHANGED, b"", b"", b"def", False, True, True)
        with pytest.raises(NdefDecodeError):
            NdefMessage.from_bytes(bad)
        assert NdefMessage.from_bytes(data)[0] == record
        assert NdefMessage.from_bytes(truncated)[0].payload == b"abcdef"

    def test_unchanged_without_open_chunk_rejected(self):
        from repro.ndef.record import encode_record_raw

        data = encode_record_raw(Tnf.UNCHANGED, b"", b"", b"x", True, True, False)
        with pytest.raises(NdefDecodeError):
            NdefMessage.from_bytes(data)

    def test_chunk_with_type_rejected(self):
        from repro.ndef.record import encode_record_raw

        data = encode_record_raw(
            Tnf.MIME_MEDIA, b"a/b", b"", b"ab", True, False, True
        ) + encode_record_raw(Tnf.MIME_MEDIA, b"a/b", b"", b"cd", False, True, False)
        with pytest.raises(NdefDecodeError):
            NdefMessage.from_bytes(data)
