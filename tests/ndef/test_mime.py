"""Unit tests for MIME record helpers."""

import pytest

from repro.errors import NdefEncodeError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import (
    message_mime_type,
    mime_record,
    normalize_mime_type,
    record_mime_type,
    text_plain_record,
)
from repro.ndef.record import NdefRecord, Tnf
from repro.ndef.rtd import TextRecord


class TestNormalization:
    def test_lowercases(self):
        assert normalize_mime_type("Application/X-Demo") == "application/x-demo"

    def test_strips_whitespace(self):
        assert normalize_mime_type("  text/plain  ") == "text/plain"

    @pytest.mark.parametrize(
        "bad",
        ["noslash", "a/b/c", "", "a/", "/b", "spaces in/type", "a /b"],
    )
    def test_invalid_rejected(self, bad):
        with pytest.raises(NdefEncodeError):
            normalize_mime_type(bad)

    def test_vendor_subtype_with_dots_allowed(self):
        assert (
            normalize_mime_type("application/vnd.morena.wificonfig")
            == "application/vnd.morena.wificonfig"
        )


class TestRecordBuilders:
    def test_mime_record_type_and_payload(self):
        record = mime_record("a/b", b"data", record_id=b"r1")
        assert record.tnf == Tnf.MIME_MEDIA
        assert record.type == b"a/b"
        assert record.payload == b"data"
        assert record.id == b"r1"

    def test_text_plain_record(self):
        record = text_plain_record("héllo")
        assert record.type == b"text/plain"
        assert record.payload.decode("utf-8") == "héllo"


class TestInspection:
    def test_record_mime_type(self):
        assert record_mime_type(mime_record("A/B", b"")) == "a/b"

    def test_record_mime_type_of_non_mime_record(self):
        assert record_mime_type(TextRecord("x").to_record()) == ""

    def test_record_mime_type_of_non_ascii_type(self):
        record = NdefRecord(Tnf.MIME_MEDIA, b"\xff\xfe", b"", b"")
        assert record_mime_type(record) == ""

    def test_message_mime_type_uses_first_mime_record(self):
        message = NdefMessage(
            [TextRecord("x").to_record(), mime_record("c/d", b""), mime_record("e/f", b"")]
        )
        assert message_mime_type(message) == "c/d"

    def test_message_without_mime_records(self):
        message = NdefMessage([TextRecord("x").to_record()])
        assert message_mime_type(message) == ""
