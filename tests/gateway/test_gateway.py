"""FleetGateway end-to-end: sharded ingestion, merged views, drop accounting.

Every test runs under a :class:`ManualClock` — drains are wake-driven
(both reactor backends service wakes without time passing) and the
``drain()`` condition barrier replaces sleeps.
"""

import pytest

from repro.clock import ManualClock
from repro.core.scheduler import Reactor
from repro.gateway import (
    FleetGateway,
    GatewayReporter,
    IngestShard,
    ScanEvent,
    make_fleet_reporters,
    shard_of,
    simulate_fleet,
)
from repro.harness.crowd import fleet_day

BACKENDS = ("threaded", "asyncio")


class InertTask:
    """A registered-but-never-run drain task: queues only fill."""

    def __init__(self, step):
        self._step = step
        self.wakes = 0
        self.scheduled = []
        self.cancelled = False

    def wake(self):
        self.wakes += 1

    def schedule_at(self, when):
        self.scheduled.append(when)

    def cancel(self):
        self.cancelled = True

    def run(self):
        """Drive one drain quantum by hand (deterministic tests)."""
        return self._step()


class InertReactor:
    def __init__(self):
        self.tasks = []

    def register(self, step, name="task"):
        task = InertTask(step)
        self.tasks.append(task)
        return task


@pytest.fixture(params=BACKENDS)
def live(request):
    """(clock, reactor, gateway) on one backend, torn down afterwards."""
    clock = ManualClock()
    reactor = Reactor(clock=clock, name="gw-test", mode=request.param)
    gateway = FleetGateway(
        reactor, clock=clock, shards=4, window_seconds=60.0, bucket_seconds=5.0
    )
    yield clock, reactor, gateway
    gateway.close()
    reactor.stop()


def scan(uid, station, at, count=1, kind="scan"):
    return ScanEvent(kind, uid, station, at, count)


class TestIngestion:
    def test_submit_drain_and_views(self, live):
        clock, _reactor, gateway = live
        gateway.submit(scan("tag-1", "gate-0", 0.0))
        gateway.submit(scan("tag-1", "gate-1", 1.0))
        gateway.submit(scan("tag-2", "gate-0", 1.0))
        assert gateway.drain(timeout=5.0)

        telemetry = gateway.telemetry()
        assert telemetry["events_submitted"] == 3
        assert telemetry["events_ingested"] == 3
        assert telemetry["events_dropped_queue"] == 0
        assert telemetry["queue_depth"] == 0
        assert telemetry["tags_tracked"] == 2

        history = gateway.travel_history("tag-1")
        assert history is not None
        assert [station for station, _at in history["path"]] == [
            "gate-0",
            "gate-1",
        ]
        assert gateway.travel_history("tag-unknown") is None

        rates = gateway.station_rates(now_seconds=1.0)
        assert rates["gate-0"]["total"] == 2
        assert rates["gate-1"]["total"] == 1

    def test_batch_submit_splits_per_shard(self, live):
        _clock, _reactor, gateway = live
        events = [scan(f"tag-{i:03d}", "gate-0", 0.0) for i in range(64)]
        expected_shards = {shard_of(e.tag_uid, gateway.shard_count) for e in events}
        assert len(expected_shards) > 1  # the hash genuinely spreads this set
        gateway.submit_batch(events)
        assert gateway.drain(timeout=5.0)
        telemetry = gateway.telemetry()
        assert telemetry["events_submitted"] == 64
        assert telemetry["events_ingested"] == 64
        active = [s for s in telemetry["per_shard"] if s["submitted"]]
        assert len(active) == len(expected_shards)

    def test_lease_leaderboard_merged_and_ranked(self, live):
        _clock, _reactor, gateway = live
        gateway.submit_batch(
            [
                scan("tag-hot", "gate-0", 0.0, kind="lease_acquired"),
                scan("tag-hot", "gate-1", 1.0, count=3, kind="lease_denied"),
                scan("tag-warm", "gate-0", 1.0, kind="lease_denied"),
                scan("tag-cold", "gate-2", 2.0, kind="lease_acquired"),
            ]
        )
        assert gateway.drain(timeout=5.0)
        board = gateway.lease_leaderboard(top=2)
        assert [row["tag_uid"] for row in board] == ["tag-hot", "tag-warm"]
        assert board[0]["denied"] == 3
        assert board[0]["acquired"] == 1

    def test_ingest_latency_summary_populated(self, live):
        _clock, _reactor, gateway = live
        gateway.submit_batch([scan(f"tag-{i}", "gate-0", 0.0) for i in range(10)])
        assert gateway.drain(timeout=5.0)
        summary = gateway.ingest_latency()
        assert summary.count == 10
        assert summary.p99 >= 0.0

    def test_snapshot_round_trips_to_dict(self, live):
        _clock, _reactor, gateway = live
        gateway.submit(scan("tag-1", "gate-0", 0.0))
        assert gateway.drain(timeout=5.0)
        snap = gateway.snapshot(top=5).as_dict()
        assert snap["telemetry"]["events_ingested"] == 1
        assert "gate-0" in snap["station_rates"]
        assert snap["ingest_latency"]["count"] == 1

    def test_rejects_zero_shards(self, live):
        _clock, reactor, _gateway = live
        with pytest.raises(ValueError):
            FleetGateway(reactor, shards=0)


class TestShardDeterministic:
    """Drive one shard's drain quantum by hand — no reactor threads."""

    def test_queue_overflow_sheds_oldest_and_counts(self):
        clock = ManualClock()
        reactor = InertReactor()
        shard = IngestShard(0, reactor, clock, max_queue=3)
        for index in range(5):
            shard.submit(scan(f"tag-{index}", "gate-0", float(index)))
        assert shard.queue_depth == 3
        assert shard.dropped == 2  # oldest two shed, monotonic
        assert shard.queue_high_water == 3
        (task,) = reactor.tasks
        task.run()
        assert shard.queue_depth == 0
        # The freshest events survived the shedding.
        assert shard.travel_history("tag-4") is not None
        assert shard.travel_history("tag-0") is None

    def test_submit_many_overflow_accounts_counts(self):
        clock = ManualClock()
        shard = IngestShard(0, InertReactor(), clock, max_queue=2)
        shard.submit_many(
            [scan(f"tag-{i}", "gate-0", 0.0, count=2) for i in range(4)]
        )
        assert shard.queue_depth == 2
        assert shard.dropped == 4  # two records shed, each count=2
        assert shard.submitted == 8

    def test_backlog_drains_in_batch_quanta(self):
        clock = ManualClock()
        reactor = InertReactor()
        shard = IngestShard(0, reactor, clock, max_queue=100, max_batch=4)
        shard.submit_many([scan(f"tag-{i}", "gate-0", 0.0) for i in range(10)])
        (task,) = reactor.tasks
        # 10 events at 4/quantum: two steps report backlog, third goes idle.
        assert task.run() is not None
        assert task.run() is not None
        assert task.run() is None
        assert shard.ingested == 10
        assert shard.batches == 3

    def test_ingest_latency_measures_queue_wait(self):
        clock = ManualClock()
        reactor = InertReactor()
        shard = IngestShard(0, reactor, clock)
        shard.submit(scan("tag-1", "gate-0", 0.0))
        clock.advance(2.5)  # the event waits 2.5 virtual seconds in queue
        (task,) = reactor.tasks
        task.run()
        summary = shard.latency_summary()
        assert summary.count == 1
        assert summary.p99 == pytest.approx(2.5)

    def test_gateway_drain_times_out_when_nothing_drains(self):
        clock = ManualClock()
        gateway = FleetGateway(InertReactor(), clock=clock, shards=2)
        gateway.submit(scan("tag-1", "gate-0", 0.0))
        assert gateway.drain(timeout=0.05) is False
        assert gateway.telemetry()["queue_depth"] == 1

    def test_queue_drops_surface_in_gateway_telemetry(self):
        clock = ManualClock()
        gateway = FleetGateway(InertReactor(), clock=clock, shards=1, max_queue=2)
        for index in range(5):
            gateway.submit(scan(f"tag-{index}", "gate-0", 0.0))
        telemetry = gateway.telemetry()
        assert telemetry["events_dropped_queue"] == 3
        assert telemetry["queue_high_water"] == 2


class TestReporterIntegration:
    def test_reporter_drops_surface_in_telemetry(self, live):
        _clock, _reactor, gateway = live
        reporter = GatewayReporter(
            gateway, "gate-0", max_buffer=2, max_batch=100, flush_interval=None
        )
        for index in range(5):
            reporter.record("scan", f"tag-{index}")
        assert gateway.telemetry()["events_dropped_reporter"] == 3
        reporter.flush()
        assert gateway.drain(timeout=5.0)
        telemetry = gateway.telemetry()
        assert telemetry["events_ingested"] == 2
        assert telemetry["events_dropped_reporter"] == 3
        assert telemetry["reporters"] == 1


class TestFleetSimulation:
    def test_simulation_is_deterministic_and_lossless(self, live):
        clock, _reactor, gateway = live
        schedule = fleet_day(8, 40, rush_seconds=1.0, arrivals_per_second=50.0,
                             seed=7)
        reporters = make_fleet_reporters(gateway, 8, max_batch=16)
        stats = simulate_fleet(gateway, schedule, reporters, seed=7)
        assert gateway.drain(timeout=10.0)

        assert stats.scans == sum(
            len(e.tag_indices) for e in schedule if e.enter
        )
        telemetry = gateway.telemetry()
        # Coalescing may fold events, but nothing is lost: submitted
        # *counts* equal everything recorded minus device-side drops.
        assert telemetry["events_submitted"] == stats.events_recorded
        assert telemetry["events_ingested"] == telemetry["events_submitted"]
        assert telemetry["events_dropped_queue"] == 0
        assert telemetry["events_dropped_reporter"] == 0

        # Same seed, fresh run: byte-identical stats.
        clock2 = ManualClock()
        gateway2 = FleetGateway(InertReactor(), clock=clock2, shards=4)
        stats2 = simulate_fleet(
            gateway2,
            fleet_day(8, 40, rush_seconds=1.0, arrivals_per_second=50.0, seed=7),
            make_fleet_reporters(gateway2, 8, max_batch=16),
            seed=7,
        )
        assert stats2.as_dict() == stats.as_dict()

    def test_denials_populate_the_leaderboard(self, live):
        _clock, _reactor, gateway = live
        schedule = fleet_day(6, 10, rush_seconds=2.0, arrivals_per_second=80.0,
                             seed=3)
        stats = simulate_fleet(
            gateway,
            schedule,
            make_fleet_reporters(gateway, 6),
            lease_ratio=0.6,
            seed=3,
        )
        assert gateway.drain(timeout=10.0)
        assert stats.denials > 0
        board = gateway.lease_leaderboard(top=5)
        assert board
        assert sum(row["denied"] for row in board) > 0
        assert board[0]["denied"] == max(row["denied"] for row in board)
