"""Unit tests for the materialized fleet views."""

import pytest

from repro.gateway.events import ScanEvent, shard_of
from repro.gateway.views import LeaseBoard, StationWindow, TravelHistory


class TestScanEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ScanEvent("teleport", "tag-1", "gate-0", 0.0)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            ScanEvent("scan", "tag-1", "gate-0", 0.0, count=0)

    def test_coalesce_key_ignores_time_and_count(self):
        a = ScanEvent("scan", "tag-1", "gate-0", 0.0, count=1, detail="detected")
        b = ScanEvent("scan", "tag-1", "gate-0", 9.0, count=7, detail="detected")
        assert a.coalesce_key() == b.coalesce_key()

    def test_shard_of_is_stable_and_in_range(self):
        uids = [f"tag-{i:06d}" for i in range(100)]
        first = [shard_of(uid, 8) for uid in uids]
        second = [shard_of(uid, 8) for uid in uids]
        assert first == second
        assert all(0 <= index < 8 for index in first)
        # The hash actually spreads tags (not everything on one shard).
        assert len(set(first)) > 1

    def test_single_shard_short_circuits(self):
        assert shard_of("anything", 1) == 0


class TestTravelHistory:
    def test_transitions_not_sightings(self):
        history = TravelHistory("tag-1", depth=8)
        history.observe("gate-0", 0.0)
        history.observe("gate-0", 1.0)  # same station: no new entry
        history.observe("gate-1", 2.0)
        assert history.scans == 3
        assert history.transitions == 2
        assert [station for station, _at in history.entries] == ["gate-0", "gate-1"]
        assert history.current_station == "gate-1"

    def test_ring_bounded_but_lifetime_counters_monotonic(self):
        history = TravelHistory("tag-1", depth=4)
        for index in range(10):
            history.observe(f"gate-{index}", float(index))
        assert len(history.entries) == 4
        assert history.transitions == 10
        assert history.entries[0][0] == "gate-6"  # oldest entries forgotten

    def test_coalesced_count_feeds_scans(self):
        history = TravelHistory("tag-1")
        history.observe("gate-0", 0.0, count=5)
        assert history.scans == 5
        assert history.transitions == 1


class TestStationWindow:
    def test_windowed_count_excludes_old_buckets(self):
        window = StationWindow(window_seconds=10.0, bucket_seconds=1.0)
        window.add(0.5, 3)
        window.add(20.0, 2)
        assert window.total == 5
        assert window.windowed_count(now_seconds=20.0) == 2
        assert window.rate_per_second(20.0) == pytest.approx(0.2)

    def test_trim_drops_stale_buckets_total_survives(self):
        window = StationWindow(window_seconds=5.0, bucket_seconds=1.0)
        window.add(0.0, 1)
        window.add(100.0, 1)
        window.trim(100.0)
        assert len(window.buckets) == 1
        assert window.total == 2

    def test_merge_sums_bucketwise(self):
        a = StationWindow(10.0, 1.0)
        b = StationWindow(10.0, 1.0)
        a.add(1.0, 2)
        b.add(1.0, 3)
        b.add(4.0, 1)
        merged = a + b
        assert merged.total == 6
        assert merged.windowed_count(5.0) == 6
        # Merge is non-destructive.
        assert a.total == 2 and b.total == 4

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError):
            StationWindow(10.0, 1.0).merge(StationWindow(10.0, 2.0))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            StationWindow(0.0, 1.0)


class TestLeaseBoard:
    def test_ranks_by_denials_then_acquisitions(self):
        board = LeaseBoard()
        board.observe("lease_denied", "tag-b", 3)
        board.observe("lease_denied", "tag-a", 3)
        board.observe("lease_acquired", "tag-a", 2)
        board.observe("lease_acquired", "tag-c", 9)
        top = board.top(3)
        assert [row["tag_uid"] for row in top] == ["tag-a", "tag-b", "tag-c"]
        assert top[0]["denied"] == 3 and top[0]["acquired"] == 2

    def test_all_lease_kinds_tallied(self):
        board = LeaseBoard()
        for kind in ("lease_acquired", "lease_denied", "lease_renewed",
                     "lease_released"):
            board.observe(kind, "tag-x")
        (row,) = board.top(1)
        assert (row["acquired"], row["denied"], row["renewed"],
                row["released"]) == (1, 1, 1, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LeaseBoard().observe("lease_stolen", "tag-x")
