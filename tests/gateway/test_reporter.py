"""GatewayReporter: coalescing, bounded buffering, flushing, middleware hooks."""

import asyncio

import pytest

from repro.clock import ManualClock
from repro.concurrent import EventLog, wait_until
from repro.core.aio import tag_stream
from repro.core.discovery import TagDiscoverer
from repro.core.scheduler import Reactor
from repro.gateway.reporter import GatewayReporter
from repro.leasing.manager import LeaseManager

from tests.conftest import (
    TEXT_TYPE,
    PlainNfcActivity,
    make_reference,
    string_converters,
    text_tag,
)


class SinkGateway:
    """A gateway double that just keeps the delivered batches."""

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else ManualClock()
        self.batches = []
        self.reporters = []

    def register_reporter(self, reporter):
        self.reporters.append(reporter)

    def submit_batch(self, events):
        self.batches.append(list(events))

    @property
    def delivered(self):
        return [event for batch in self.batches for event in batch]


class TestBuffering:
    def test_coalesces_identical_bursts(self):
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        for _ in range(5):
            reporter.record("scan", "tag-1", detail="detected")
        assert reporter.pending == 1
        assert reporter.coalesced == 4
        assert reporter.recorded == 5
        reporter.flush()
        (event,) = sink.delivered
        assert event.count == 5

    def test_distinct_events_do_not_coalesce(self):
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        reporter.record("scan", "tag-1")
        reporter.record("scan", "tag-2")
        reporter.record("save", "tag-2")
        assert reporter.pending == 3
        assert reporter.coalesced == 0

    def test_coalesce_opt_out(self):
        sink = SinkGateway()
        reporter = GatewayReporter(
            sink, "gate-0", flush_interval=None, coalesce=False
        )
        reporter.record("scan", "tag-1")
        reporter.record("scan", "tag-1")
        assert reporter.pending == 2

    def test_overflow_sheds_oldest_and_counts(self):
        sink = SinkGateway()
        reporter = GatewayReporter(
            sink, "gate-0", max_buffer=3, max_batch=100, flush_interval=None
        )
        for index in range(5):
            reporter.record("scan", f"tag-{index}")
        assert reporter.pending == 3
        assert reporter.dropped == 2  # tag-0 and tag-1 shed
        reporter.flush()
        assert [e.tag_uid for e in sink.delivered] == ["tag-2", "tag-3", "tag-4"]

    def test_dropped_counts_coalesced_weight(self):
        """A shed record pays for every event folded into it."""
        sink = SinkGateway()
        reporter = GatewayReporter(
            sink, "gate-0", max_buffer=1, max_batch=100, flush_interval=None
        )
        for _ in range(4):
            reporter.record("scan", "tag-0")  # coalesces: one record, count=4
        reporter.record("scan", "tag-1")  # evicts it
        assert reporter.dropped == 4

    def test_dropped_is_monotonic_across_flushes(self):
        sink = SinkGateway()
        reporter = GatewayReporter(
            sink, "gate-0", max_buffer=1, max_batch=100, flush_interval=None
        )
        reporter.record("scan", "tag-0")
        reporter.record("scan", "tag-1")
        assert reporter.dropped == 1
        reporter.flush()
        reporter.record("scan", "tag-2")
        reporter.record("scan", "tag-3")
        assert reporter.dropped == 2

    def test_threshold_flushes_inline_without_reactor(self):
        sink = SinkGateway()
        reporter = GatewayReporter(
            sink, "gate-0", max_batch=3, flush_interval=None
        )
        reporter.record("scan", "tag-0")
        reporter.record("scan", "tag-1")
        assert not sink.batches
        reporter.record("scan", "tag-2")
        assert len(sink.batches) == 1
        assert reporter.pending == 0

    def test_record_after_close_is_dropped_silently(self):
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        reporter.record("scan", "tag-0")
        reporter.close()
        assert len(sink.delivered) == 1  # close flushed the tail
        reporter.record("scan", "tag-1")
        assert reporter.pending == 0
        assert len(sink.delivered) == 1


class TestTimerFlush:
    def test_interval_flush_fires_on_clock_advance(self):
        clock = ManualClock()
        reactor = Reactor(clock=clock, name="reporter-test")
        try:
            sink = SinkGateway(clock)
            reporter = GatewayReporter(
                sink, "gate-0", reactor=reactor, flush_interval=0.5
            )
            reporter.record("scan", "tag-0")
            assert reporter.pending == 1
            assert not sink.batches
            clock.advance(0.5)
            assert wait_until(lambda: sink.batches)
            assert reporter.pending == 0
            (event,) = sink.delivered
            assert event.tag_uid == "tag-0"
        finally:
            reactor.stop()

    def test_threshold_wakes_task_instead_of_inline_flush(self):
        clock = ManualClock()
        reactor = Reactor(clock=clock, name="reporter-test")
        try:
            sink = SinkGateway(clock)
            reporter = GatewayReporter(
                sink, "gate-0", reactor=reactor, max_batch=2, flush_interval=10.0
            )
            reporter.record("scan", "tag-0")
            reporter.record("scan", "tag-1")
            # No clock advance needed: the wake drains on a worker thread.
            assert wait_until(lambda: sink.batches)
            assert len(sink.delivered) == 2
        finally:
            reactor.stop()


class TestMiddlewareHooks:
    def test_detections_become_scan_events(self, scenario):
        phone = scenario.add_phone("hook-phone")
        activity = scenario.start(phone, PlainNfcActivity)
        discoverer = TagDiscoverer(activity, TEXT_TYPE, *string_converters())
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        reporter.attach_discoverer(discoverer)
        tag = text_tag("hello")
        scenario.put(tag, phone)
        assert wait_until(lambda: reporter.recorded >= 1)
        reporter.flush()
        event = sink.delivered[0]
        assert event.kind == "scan"
        assert event.detail == "detected"
        assert event.station == "gate-0"

    def test_landed_writes_become_save_events(self, scenario, activity, phone):
        tag = text_tag("hello")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        reporter.attach_reference(reference)
        log = EventLog()
        reference.write("updated", on_written=lambda ref: log.append("written"))
        assert log.wait_for_count(1, timeout=5)
        assert wait_until(lambda: reporter.recorded >= 1)
        reporter.flush()
        (event,) = sink.delivered
        assert event.kind == "save"
        assert event.tag_uid == reference.uid_hex

    def test_reads_do_not_record(self, scenario, activity, phone):
        tag = text_tag("hello")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        reporter.attach_reference(reference)
        log = EventLog()
        reference.read(on_read=lambda value: log.append(value))
        assert log.wait_for_count(1, timeout=5)
        assert reporter.recorded == 0

    def test_lease_outcomes_become_lease_events(self, scenario):
        tag = text_tag("shared")
        phone_a = scenario.add_phone("phone-a")
        phone_b = scenario.add_phone("phone-b")
        app_a = scenario.start(phone_a, PlainNfcActivity)
        app_b = scenario.start(phone_b, PlainNfcActivity)
        scenario.put(tag, phone_a)
        scenario.put(tag, phone_b)
        manager_a = LeaseManager(
            make_reference(app_a, tag, phone_a), "phone-a", drift_bound=0.0
        )
        manager_b = LeaseManager(
            make_reference(app_b, tag, phone_b), "phone-b", drift_bound=0.0
        )
        sink = SinkGateway()
        reporter_a = GatewayReporter(sink, "gate-a", flush_interval=None)
        reporter_b = GatewayReporter(sink, "gate-b", flush_interval=None)
        reporter_a.attach_lease_manager(manager_a)
        reporter_b.attach_lease_manager(manager_b)

        log = EventLog()
        manager_a.acquire(
            30.0,
            on_acquired=lambda lease: log.append("a-acquired"),
            on_denied=lambda: log.append("a-denied"),
        )
        assert log.wait_for_count(1, timeout=5)
        manager_b.acquire(
            30.0,
            on_acquired=lambda lease: log.append("b-acquired"),
            on_denied=lambda: log.append("b-denied"),
        )
        assert log.wait_for_count(2, timeout=5)
        assert log.snapshot() == ["a-acquired", "b-denied"]

        assert wait_until(
            lambda: reporter_a.recorded >= 1 and reporter_b.recorded >= 1
        )
        reporter_a.flush()
        reporter_b.flush()
        kinds = {(e.kind, e.station) for e in sink.delivered}
        assert ("lease_acquired", "gate-a") in kinds
        assert ("lease_denied", "gate-b") in kinds

    def test_close_detaches_hooks(self, scenario):
        phone = scenario.add_phone("hook-phone")
        activity = scenario.start(phone, PlainNfcActivity)
        discoverer = TagDiscoverer(activity, TEXT_TYPE, *string_converters())
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        reporter.attach_discoverer(discoverer)
        reporter.close()
        scenario.put(text_tag("late"), phone)
        # Give the detection callback a chance to (wrongly) fire.
        assert not wait_until(lambda: reporter.recorded > 0, timeout=0.2)


class TestStreamDropRollup:
    def test_stream_shedding_counts_through_reporter(self, scenario):
        phone = scenario.add_phone("stream-phone")
        activity = scenario.start(phone, PlainNfcActivity)
        discoverer = TagDiscoverer(activity, TEXT_TYPE, *string_converters())
        sink = SinkGateway()
        reporter = GatewayReporter(sink, "gate-0", flush_interval=None)
        reporter.attach_discoverer(discoverer)

        async def overflow():
            stream = tag_stream(discoverer, max_buffer=2)
            async with stream:
                for index in range(5):
                    stream._push(f"ref{index}")  # noqa: SLF001 - overflow unit test
                return stream.dropped

        dropped = asyncio.run(overflow())
        assert dropped == 3
        # The discoverer's counter survives the stream teardown and is
        # what the reporter (and gateway telemetry) surface.
        assert discoverer.stream_dropped == 3
        assert reporter.stream_dropped == 3
