"""Unit tests for the activity lifecycle and device activity management."""

import threading

import pytest

from repro.android.activity import Activity, ActivityState
from repro.android.device import AndroidDevice
from repro.android.intents import ACTION_NDEF_DISCOVERED, Intent, IntentFilter
from repro.concurrent import EventLog
from repro.errors import LifecycleError
from repro.radio.environment import RfidEnvironment


class TracingActivity(Activity):
    def __init__(self, device):
        super().__init__(device)
        self.trace = EventLog()

    def on_create(self):
        self.trace.append(("create", threading.current_thread().name))

    def on_start(self):
        self.trace.append(("start", None))

    def on_resume(self):
        self.trace.append(("resume", None))

    def on_pause(self):
        self.trace.append(("pause", None))

    def on_stop(self):
        self.trace.append(("stop", None))

    def on_destroy(self):
        self.trace.append(("destroy", None))

    def on_new_intent(self, intent):
        self.trace.append(("intent", intent.action))

    def events(self):
        return [event for event, _ in self.trace.snapshot()]


@pytest.fixture
def device():
    env = RfidEnvironment()
    dev = AndroidDevice("test", env)
    yield dev
    dev.shutdown()


class TestLifecycle:
    def test_start_activity_reaches_resumed(self, device):
        activity = device.start_activity(TracingActivity)
        assert activity.state == ActivityState.RESUMED
        assert activity.events() == ["create", "start", "resume"]

    def test_lifecycle_callbacks_run_on_main_thread(self, device):
        activity = device.start_activity(TracingActivity)
        _, thread_name = activity.trace.snapshot()[0]
        assert thread_name == "looper-test-main"

    def test_second_activity_stops_first(self, device):
        first = device.start_activity(TracingActivity)
        second = device.start_activity(TracingActivity)
        assert first.state == ActivityState.STOPPED
        assert second.state == ActivityState.RESUMED
        assert device.foreground_activity is second

    def test_finish_reveals_previous(self, device):
        first = device.start_activity(TracingActivity)
        second = device.start_activity(TracingActivity)
        device.finish_activity(second)
        assert second.is_destroyed
        assert first.state == ActivityState.RESUMED
        assert device.foreground_activity is first

    def test_finish_background_activity(self, device):
        first = device.start_activity(TracingActivity)
        second = device.start_activity(TracingActivity)
        device.finish_activity(first)
        assert first.is_destroyed
        assert second.state == ActivityState.RESUMED

    def test_finish_unknown_activity_rejected(self, device):
        other_env = RfidEnvironment()
        other = AndroidDevice("other", other_env)
        try:
            stranger = other.start_activity(TracingActivity)
            with pytest.raises(LifecycleError):
                device.finish_activity(stranger)
        finally:
            other.shutdown()

    def test_illegal_transition_rejected(self, device):
        activity = device.start_activity(TracingActivity)
        with pytest.raises(LifecycleError):
            activity._transition(ActivityState.CREATED)

    def test_shutdown_destroys_everything(self):
        env = RfidEnvironment()
        dev = AndroidDevice("x", env)
        a = dev.start_activity(TracingActivity)
        b = dev.start_activity(TracingActivity)
        dev.shutdown()
        assert a.is_destroyed and b.is_destroyed
        assert not dev.main_looper.alive


class TestIntentDelivery:
    def test_resumed_activity_receives_intents(self, device):
        activity = device.start_activity(TracingActivity)
        activity._deliver_intent(Intent(ACTION_NDEF_DISCOVERED))
        assert "intent" in activity.events()

    def test_paused_activity_ignores_intents(self, device):
        first = device.start_activity(TracingActivity)
        device.start_activity(TracingActivity)
        first._deliver_intent(Intent(ACTION_NDEF_DISCOVERED))
        assert "intent" not in first.events()


class TestForegroundDispatch:
    def test_filters_empty_until_enabled(self, device):
        activity = device.start_activity(TracingActivity)
        assert activity.nfc_filters() == []
        filters = [IntentFilter(ACTION_NDEF_DISCOVERED, "a/b")]
        activity.enable_foreground_dispatch(filters)
        assert activity.nfc_filters() == filters

    def test_disable_clears_filters(self, device):
        activity = device.start_activity(TracingActivity)
        activity.enable_foreground_dispatch([IntentFilter(ACTION_NDEF_DISCOVERED)])
        activity.disable_foreground_dispatch()
        assert activity.nfc_filters() == []


class TestUiHelpers:
    def test_run_on_ui_thread(self, device):
        activity = device.start_activity(TracingActivity)
        log = EventLog()
        activity.run_on_ui_thread(
            lambda: log.append(threading.current_thread().name)
        )
        assert device.sync()
        assert log.snapshot() == ["looper-test-main"]

    def test_toast_recorded_on_device(self, device):
        activity = device.start_activity(TracingActivity)
        activity.toast("hello")
        assert device.toasts.snapshot() == ["hello"]
