"""Tests for host card emulation: a phone acting as a Type 4 card."""

import pytest

from repro.android.nfc.hce import HostCardEmulationService
from repro.concurrent import EventLog
from repro.core import (
    NFCActivity,
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
    TagDiscoverer,
)
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record

CARD_TYPE = "application/x-loyalty-card"


def card_message(text: str) -> NdefMessage:
    return NdefMessage([mime_record(CARD_TYPE, text.encode())])


class TerminalApp(NFCActivity):
    """The merchant terminal: reads whatever card is presented."""

    def on_create(self):
        self.cards = EventLog()
        app = self

        class CardDiscoverer(TagDiscoverer):
            def on_tag_detected(self, reference):
                app.cards.append(reference.cached)

            def on_tag_redetected(self, reference):
                app.cards.append(reference.cached)

        self.discoverer = CardDiscoverer(
            self,
            CARD_TYPE,
            NdefMessageToStringConverter(),
            StringToNdefMessageConverter(CARD_TYPE),
        )


@pytest.fixture
def terminal(scenario):
    phone = scenario.add_phone("terminal")
    return phone, scenario.start(phone, TerminalApp)


@pytest.fixture
def customer(scenario):
    return scenario.add_phone("customer")


class TestCardEmulation:
    def test_card_visible_when_phones_touch(self, scenario, terminal, customer):
        terminal_phone, terminal_app = terminal
        service = customer.start_service(
            HostCardEmulationService, argument=card_message("member-42")
        )
        scenario.pair(customer, terminal_phone)
        assert terminal_app.cards.wait_for_count(1)
        assert terminal_app.cards.snapshot() == ["member-42"]
        assert service.card.uid  # a real tag object backs the emulation

    def test_card_withdrawn_on_separation(self, scenario, terminal, customer):
        terminal_phone, _ = terminal
        service = customer.start_service(
            HostCardEmulationService, argument=card_message("x")
        )
        scenario.pair(customer, terminal_phone)
        assert scenario.env.tag_in_field(service.card, terminal_phone.port)
        scenario.unpair(customer, terminal_phone)
        assert not scenario.env.tag_in_field(service.card, terminal_phone.port)

    def test_card_presented_when_emulation_starts_mid_touch(
        self, scenario, terminal, customer
    ):
        terminal_phone, terminal_app = terminal
        scenario.pair(customer, terminal_phone)  # already touching
        customer.start_service(
            HostCardEmulationService, argument=card_message("late-start")
        )
        assert terminal_app.cards.wait_for_count(1)

    def test_stop_service_withdraws_card(self, scenario, terminal, customer):
        terminal_phone, _ = terminal
        service = customer.start_service(
            HostCardEmulationService, argument=card_message("x")
        )
        scenario.pair(customer, terminal_phone)
        assert scenario.env.tag_in_field(service.card, terminal_phone.port)
        customer.stop_service(service)
        assert not scenario.env.tag_in_field(service.card, terminal_phone.port)

    def test_card_content_updates_between_reads(self, scenario, terminal, customer):
        """HCE's edge over stickers: the host mutates the card live."""
        terminal_phone, terminal_app = terminal
        service = customer.start_service(
            HostCardEmulationService, argument=card_message("token-1")
        )
        scenario.pair(customer, terminal_phone)
        assert terminal_app.cards.wait_for_count(1)
        scenario.unpair(customer, terminal_phone)
        service.update_card(card_message("token-2"))
        scenario.pair(customer, terminal_phone)
        assert terminal_app.cards.wait_for_count(2)
        assert terminal_app.cards.snapshot() == ["token-1", "token-2"]

    def test_one_card_many_terminals(self, scenario, customer):
        terminals = []
        for index in range(3):
            phone = scenario.add_phone(f"terminal-{index}")
            terminals.append((phone, scenario.start(phone, TerminalApp)))
        customer.start_service(
            HostCardEmulationService, argument=card_message("multi")
        )
        for phone, _ in terminals:
            scenario.pair(customer, phone)
        for _, app in terminals:
            assert app.cards.wait_for_count(1)

    def test_terminal_reads_card_through_isodep(self, scenario, terminal, customer):
        """Below MORENA: the terminal can drive the card with raw APDUs."""
        from repro.android.nfc.tech import IsoDep, Tag
        from repro.tags.apdu import CommandApdu, INS_SELECT, ResponseApdu
        from repro.tags.type4 import NDEF_AID

        terminal_phone, _ = terminal
        service = customer.start_service(
            HostCardEmulationService, argument=card_message("apdu-level")
        )
        scenario.pair(customer, terminal_phone)
        handle = Tag(service.card, terminal_phone.port)
        with IsoDep.get(handle) as iso:
            raw = iso.transceive(
                CommandApdu(0x00, INS_SELECT, 0x04, 0x00, data=NDEF_AID).to_bytes()
            )
        assert ResponseApdu.from_bytes(raw).is_ok
