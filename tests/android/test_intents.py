"""Unit tests for intents and intent filters."""

import pytest

from repro.android.intents import (
    ACTION_NDEF_DISCOVERED,
    ACTION_TECH_DISCOVERED,
    EXTRA_BEAM_SENDER,
    Intent,
    IntentFilter,
)
from repro.errors import IntentError


class TestIntent:
    def test_extras_access(self):
        intent = Intent(ACTION_NDEF_DISCOVERED, extras={"k": 42})
        assert intent.get_extra("k") == 42
        assert intent.get_extra("missing") is None
        assert intent.get_extra("missing", "fallback") == "fallback"

    def test_require_extra(self):
        intent = Intent(ACTION_NDEF_DISCOVERED, extras={"k": 1})
        assert intent.require_extra("k") == 1
        with pytest.raises(IntentError):
            intent.require_extra("missing")

    def test_is_beam(self):
        plain = Intent(ACTION_NDEF_DISCOVERED)
        beam = Intent(ACTION_NDEF_DISCOVERED, extras={EXTRA_BEAM_SENDER: "alice"})
        assert not plain.is_beam
        assert beam.is_beam


class TestIntentFilter:
    def test_action_match(self):
        filt = IntentFilter(ACTION_TECH_DISCOVERED)
        assert filt.matches(Intent(ACTION_TECH_DISCOVERED))
        assert not filt.matches(Intent(ACTION_NDEF_DISCOVERED))

    def test_exact_mime_match(self):
        filt = IntentFilter(ACTION_NDEF_DISCOVERED, "text/plain")
        assert filt.matches(Intent(ACTION_NDEF_DISCOVERED, "text/plain"))
        assert not filt.matches(Intent(ACTION_NDEF_DISCOVERED, "text/html"))

    def test_mime_match_is_case_insensitive(self):
        filt = IntentFilter(ACTION_NDEF_DISCOVERED, "Text/Plain")
        assert filt.matches(Intent(ACTION_NDEF_DISCOVERED, "text/PLAIN"))

    def test_wildcard_subtype(self):
        filt = IntentFilter(ACTION_NDEF_DISCOVERED, "text/*")
        assert filt.matches(Intent(ACTION_NDEF_DISCOVERED, "text/plain"))
        assert filt.matches(Intent(ACTION_NDEF_DISCOVERED, "text/html"))
        assert not filt.matches(Intent(ACTION_NDEF_DISCOVERED, "image/png"))

    def test_mime_filter_requires_mime_on_intent(self):
        filt = IntentFilter(ACTION_NDEF_DISCOVERED, "text/*")
        assert not filt.matches(Intent(ACTION_NDEF_DISCOVERED, ""))

    def test_no_mime_pattern_matches_any_type(self):
        filt = IntentFilter(ACTION_NDEF_DISCOVERED)
        assert filt.matches(Intent(ACTION_NDEF_DISCOVERED, "anything/here"))
        assert filt.matches(Intent(ACTION_NDEF_DISCOVERED, ""))
