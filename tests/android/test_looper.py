"""Unit tests for the Looper/Handler message queue."""

import threading
import time

import pytest

from repro.android.looper import Handler, Looper
from repro.clock import ManualClock
from repro.concurrent import CountDownLatch, EventLog
from repro.errors import LooperError


@pytest.fixture
def looper():
    lp = Looper("test")
    yield lp
    lp.quit()


class TestPosting:
    def test_post_runs_on_looper_thread(self, looper):
        names = EventLog()
        looper.post(lambda: names.append(threading.current_thread().name))
        assert looper.sync()
        assert names.snapshot() == ["looper-test"]

    def test_posts_run_in_order(self, looper):
        log = EventLog()
        for i in range(20):
            looper.post(lambda i=i: log.append(i))
        assert looper.sync()
        assert log.snapshot() == list(range(20))

    def test_processed_count(self, looper):
        for _ in range(5):
            looper.post(lambda: None)
        looper.sync()
        assert looper.processed_count >= 5

    def test_negative_delay_rejected(self, looper):
        with pytest.raises(LooperError):
            looper.post_delayed(lambda: None, -1)

    def test_handler_facade(self, looper):
        log = EventLog()
        handler = Handler(looper)
        handler.post(lambda: log.append("x"))
        assert handler.looper is looper
        assert looper.sync()
        assert log.snapshot() == ["x"]


class TestDelays:
    def test_delayed_post_waits(self, looper):
        log = EventLog()
        looper.post_delayed(lambda: log.append("late"), 0.08)
        looper.post(lambda: log.append("now"))
        assert log.wait_for_count(2, timeout=3)
        assert log.snapshot() == ["now", "late"]

    def test_delayed_posts_fire_in_deadline_order(self, looper):
        log = EventLog()
        looper.post_delayed(lambda: log.append("b"), 0.06)
        looper.post_delayed(lambda: log.append("a"), 0.02)
        assert log.wait_for_count(2, timeout=3)
        assert log.snapshot() == ["a", "b"]

    def test_manual_clock_delay(self):
        clock = ManualClock()
        looper = Looper("manual", clock=clock)
        try:
            log = EventLog()
            looper.post_delayed(lambda: log.append("x"), 10.0)
            looper.sync()
            time.sleep(0.02)
            assert len(log) == 0
            clock.advance(10.0)
            assert log.wait_for_count(1, timeout=3)
        finally:
            looper.quit()


class TestErrors:
    def test_exception_recorded_and_loop_continues(self, looper):
        log = EventLog()

        def boom():
            raise ValueError("kaboom")

        looper.post(boom)
        looper.post(lambda: log.append("survived"))
        assert log.wait_for_count(1)
        errors = looper.drain_errors()
        assert len(errors) == 1
        assert isinstance(errors[0], ValueError)
        assert looper.drain_errors() == []


class TestLifecycle:
    def test_quit_stops_thread(self):
        looper = Looper("dying")
        looper.quit()
        assert not looper.alive

    def test_post_after_quit_rejected(self):
        looper = Looper("dying")
        looper.quit()
        with pytest.raises(LooperError):
            looper.post(lambda: None)

    def test_quit_drops_pending(self):
        looper = Looper("dying")
        log = EventLog()
        latch = CountDownLatch(1)
        looper.post(lambda: latch.await_(2.0))
        looper.post_delayed(lambda: log.append("should not run"), 5.0)
        looper.quit(timeout=0.01)  # quit while blocked
        latch.count_down()
        time.sleep(0.05)
        assert len(log) == 0

    def test_sync_after_quit_returns_true(self):
        looper = Looper("dying")
        looper.quit()
        assert looper.sync()

    def test_sync_from_looper_thread_raises(self, looper):
        failures = EventLog()

        def bad():
            try:
                looper.sync()
            except LooperError:
                failures.append("raised")

        looper.post(bad)
        assert failures.wait_for_count(1)

    def test_wait_idle(self, looper):
        looper.post(lambda: time.sleep(0.02))
        assert looper.wait_idle(timeout=3)
        assert looper.pending_count == 0
