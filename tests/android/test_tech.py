"""Unit tests for the blocking tech classes (Tag, Ndef, NdefFormatable)."""

import pytest

from repro.android.nfc.tech import Ndef, NdefFormatable, Tag
from repro.errors import RadioError, TagLostError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.environment import RfidEnvironment
from repro.radio.link import ScriptedLink
from repro.tags.factory import make_tag


def msg(payload: bytes = b"data") -> NdefMessage:
    return NdefMessage([mime_record("a/b", payload)])


@pytest.fixture
def env():
    return RfidEnvironment()


@pytest.fixture
def port(env):
    return env.create_port("p")


class TestTagHandle:
    def test_id_is_uid(self, port):
        simulated = make_tag()
        handle = Tag(simulated, port)
        assert handle.id == simulated.uid
        assert handle.id_hex == simulated.uid_hex

    def test_tech_list_formatted(self, port):
        assert Tag(make_tag(), port).get_tech_list() == ["android.nfc.tech.Ndef"]

    def test_tech_list_unformatted(self, port):
        handle = Tag(make_tag(formatted=False), port)
        assert handle.get_tech_list() == ["android.nfc.tech.NdefFormatable"]

    def test_equality_by_tag_and_port(self, env, port):
        simulated = make_tag()
        other_port = env.create_port("q")
        assert Tag(simulated, port) == Tag(simulated, port)
        assert Tag(simulated, port) != Tag(simulated, other_port)
        assert Tag(simulated, port) != Tag(make_tag(), port)


class TestNdefTech:
    def test_get_returns_none_for_unformatted(self, port):
        assert Ndef.get(Tag(make_tag(formatted=False), port)) is None

    def test_io_requires_connect(self, env, port):
        simulated = make_tag()
        env.move_tag_into_field(simulated, port)
        ndef = Ndef.get(Tag(simulated, port))
        with pytest.raises(RadioError):
            ndef.get_ndef_message()
        with pytest.raises(RadioError):
            ndef.write_ndef_message(msg())

    def test_double_connect_rejected(self, port):
        ndef = Ndef.get(Tag(make_tag(), port))
        ndef.connect()
        with pytest.raises(RadioError):
            ndef.connect()

    def test_close_is_idempotent(self, port):
        ndef = Ndef.get(Tag(make_tag(), port))
        ndef.connect()
        ndef.close()
        ndef.close()
        assert not ndef.is_connected

    def test_context_manager(self, env, port):
        simulated = make_tag(content=msg(b"cm"))
        env.move_tag_into_field(simulated, port)
        with Ndef.get(Tag(simulated, port)) as ndef:
            assert ndef.is_connected
            assert ndef.get_ndef_message() == msg(b"cm")
        assert not ndef.is_connected

    def test_read_write_roundtrip(self, env, port):
        simulated = make_tag()
        env.move_tag_into_field(simulated, port)
        with Ndef.get(Tag(simulated, port)) as ndef:
            ndef.write_ndef_message(msg(b"via tech"))
            assert ndef.get_ndef_message() == msg(b"via tech")

    def test_blocking_read_raises_tag_lost_on_tear(self, env):
        port = env.create_port("flaky", link=ScriptedLink([False]))
        simulated = make_tag()
        env.move_tag_into_field(simulated, port)
        with Ndef.get(Tag(simulated, port)) as ndef:
            with pytest.raises(TagLostError):
                ndef.get_ndef_message()

    def test_metadata(self, env, port):
        simulated = make_tag("NTAG213")
        ndef = Ndef.get(Tag(simulated, port))
        assert ndef.get_max_size() == simulated.ndef_capacity
        assert ndef.is_writable()
        simulated.make_read_only()
        assert not ndef.is_writable()


class TestNdefFormatable:
    def test_get_returns_none_for_formatted(self, port):
        assert NdefFormatable.get(Tag(make_tag(), port)) is None

    def test_format_without_message(self, env, port):
        simulated = make_tag(formatted=False)
        env.move_tag_into_field(simulated, port)
        with NdefFormatable.get(Tag(simulated, port)) as formatable:
            formatable.format()
        assert simulated.is_ndef_formatted
        assert simulated.is_empty

    def test_format_with_first_message(self, env, port):
        simulated = make_tag(formatted=False)
        env.move_tag_into_field(simulated, port)
        with NdefFormatable.get(Tag(simulated, port)) as formatable:
            formatable.format(msg(b"first"))
        assert simulated.read_ndef() == msg(b"first")

    def test_format_requires_connect(self, env, port):
        simulated = make_tag(formatted=False)
        env.move_tag_into_field(simulated, port)
        formatable = NdefFormatable.get(Tag(simulated, port))
        with pytest.raises(RadioError):
            formatable.format()
