"""Tests for background services and RFID operations outside activities."""

import threading

import pytest

from repro.android.service import Service
from repro.concurrent import EventLog
from repro.errors import LifecycleError

from tests.conftest import make_reference, text_tag


class TracingService(Service):
    def __init__(self, device):
        super().__init__(device)
        self.trace = EventLog()

    def on_create(self):
        self.trace.append(("create", threading.current_thread().name))

    def on_start_command(self, argument):
        self.trace.append(("start", argument))

    def on_destroy(self):
        self.trace.append(("destroy", None))


class TestServiceLifecycle:
    def test_start_runs_create_and_command_on_main(self, scenario, phone):
        service = phone.start_service(TracingService, argument="payload")
        events = service.trace.snapshot()
        assert events[0] == ("create", f"looper-{phone.name}-main")
        assert events[1] == ("start", "payload")
        assert service in phone.running_services

    def test_stop_destroys(self, scenario, phone):
        service = phone.start_service(TracingService)
        phone.stop_service(service)
        assert service.is_destroyed
        assert ("destroy", None) in service.trace.snapshot()
        assert service not in phone.running_services

    def test_double_stop_is_idempotent(self, scenario, phone):
        service = phone.start_service(TracingService)
        phone.stop_service(service)
        phone.stop_service(service)
        destroys = [e for e in service.trace.snapshot() if e[0] == "destroy"]
        assert len(destroys) == 1

    def test_shutdown_stops_services(self, scenario):
        device = scenario.add_phone("svc-phone")
        service = device.start_service(TracingService)
        device.shutdown()
        assert service.is_destroyed

    def test_command_on_destroyed_service_rejected(self, scenario, phone):
        service = phone.start_service(TracingService)
        phone.stop_service(service)
        with pytest.raises(LifecycleError):
            service._start_command("late")


class TagWriterService(Service):
    """Receives tag references from the activity and writes through them.

    The demonstration of the paper's decoupling claim: no intents, no
    activity callbacks -- just first-class references and listeners.
    """

    def __init__(self, device):
        super().__init__(device)
        self.written = EventLog()

    def on_start_command(self, argument):
        reference, payload = argument
        reference.write(
            payload,
            on_written=lambda r: self.written.append(r.cached),
            timeout=10.0,
        )


class TestRfidOutsideActivities:
    def test_service_writes_through_a_handed_over_reference(
        self, scenario, phone, activity
    ):
        tag = text_tag("initial")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        service = phone.start_service(
            TagWriterService, argument=(reference, "from-the-service")
        )
        assert service.written.wait_for_count(1, timeout=5)
        assert tag.read_ndef()[0].payload == b"from-the-service"

    def test_service_write_queues_while_tag_away(self, scenario, phone, activity):
        tag = text_tag("initial")
        reference = make_reference(activity, tag, phone)
        service = phone.start_service(
            TagWriterService, argument=(reference, "deferred")
        )
        assert not service.written.wait_for_count(1, timeout=0.1)
        scenario.put(tag, phone)
        assert service.written.wait_for_count(1, timeout=5)
        assert tag.read_ndef()[0].payload == b"deferred"
