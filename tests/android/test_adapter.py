"""Unit tests for NfcAdapter: tag dispatch priority and Beam push."""

import pytest

from repro.android.activity import Activity
from repro.android.device import AndroidDevice
from repro.android.intents import (
    ACTION_NDEF_DISCOVERED,
    ACTION_TAG_DISCOVERED,
    ACTION_TECH_DISCOVERED,
    EXTRA_NDEF_MESSAGES,
    EXTRA_TAG,
    IntentFilter,
)
from repro.concurrent import EventLog
from repro.errors import BeamError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.environment import RfidEnvironment
from repro.tags.factory import make_tag


def msg(payload: bytes = b"data", mime: str = "a/b") -> NdefMessage:
    return NdefMessage([mime_record(mime, payload)])


class CollectingActivity(Activity):
    FILTERS = [
        IntentFilter(ACTION_NDEF_DISCOVERED, "a/b"),
        IntentFilter(ACTION_TECH_DISCOVERED),
        IntentFilter(ACTION_TAG_DISCOVERED),
    ]

    def on_create(self):
        self.intents = EventLog()
        self.enable_foreground_dispatch(self.FILTERS)

    def on_new_intent(self, intent):
        self.intents.append(intent)


@pytest.fixture
def env():
    return RfidEnvironment()


@pytest.fixture
def phone(env):
    device = AndroidDevice("phone", env)
    yield device
    device.shutdown()


class TestTagDispatch:
    def test_ndef_tag_dispatches_ndef_intent_with_message(self, env, phone):
        activity = phone.start_activity(CollectingActivity)
        tag = make_tag(content=msg(b"hi"))
        env.move_tag_into_field(tag, phone.port)
        assert activity.intents.wait_for_count(1)
        intent = activity.intents.snapshot()[0]
        assert intent.action == ACTION_NDEF_DISCOVERED
        assert intent.mime_type == "a/b"
        assert intent.require_extra(EXTRA_NDEF_MESSAGES)[0] == msg(b"hi")
        assert intent.require_extra(EXTRA_TAG).simulated is tag

    def test_empty_tag_dispatches_tech_intent(self, env, phone):
        activity = phone.start_activity(CollectingActivity)
        env.move_tag_into_field(make_tag(), phone.port)
        assert activity.intents.wait_for_count(1)
        assert activity.intents.snapshot()[0].action == ACTION_TECH_DISCOVERED

    def test_unformatted_tag_dispatches_tech_intent(self, env, phone):
        activity = phone.start_activity(CollectingActivity)
        env.move_tag_into_field(make_tag(formatted=False), phone.port)
        assert activity.intents.wait_for_count(1)
        assert activity.intents.snapshot()[0].action == ACTION_TECH_DISCOVERED

    def test_foreign_mime_falls_through_to_tech(self, env, phone):
        activity = phone.start_activity(CollectingActivity)
        env.move_tag_into_field(make_tag(content=msg(mime="x/y")), phone.port)
        assert activity.intents.wait_for_count(1)
        assert activity.intents.snapshot()[0].action == ACTION_TECH_DISCOVERED

    def test_each_tap_dispatches_again(self, env, phone):
        activity = phone.start_activity(CollectingActivity)
        tag = make_tag(content=msg())
        for _ in range(3):
            env.move_tag_into_field(tag, phone.port)
            env.remove_tag_from_field(tag, phone.port)
        assert activity.intents.wait_for_count(3)

    def test_no_dispatch_without_foreground_activity(self, env, phone):
        env.move_tag_into_field(make_tag(content=msg()), phone.port)
        assert phone.sync()  # nothing crashes, nothing delivered

    def test_no_dispatch_without_filters(self, env, phone):
        class Unfiltered(Activity):
            def on_create(self):
                self.intents = EventLog()

            def on_new_intent(self, intent):
                self.intents.append(intent)

        activity = phone.start_activity(Unfiltered)
        env.move_tag_into_field(make_tag(content=msg()), phone.port)
        assert phone.sync()
        assert len(activity.intents) == 0

    def test_disabled_adapter_dispatches_nothing(self, env, phone):
        activity = phone.start_activity(CollectingActivity)
        phone.nfc_adapter.set_enabled(False)
        env.move_tag_into_field(make_tag(content=msg()), phone.port)
        assert phone.sync()
        assert len(activity.intents) == 0
        phone.nfc_adapter.set_enabled(True)

    def test_dispatch_runs_on_main_thread(self, env, phone):
        import threading

        class ThreadChecker(CollectingActivity):
            def on_new_intent(self, intent):
                self.intents.append(threading.current_thread().name)

        activity = phone.start_activity(ThreadChecker)
        env.move_tag_into_field(make_tag(content=msg()), phone.port)
        assert activity.intents.wait_for_count(1)
        assert activity.intents.snapshot() == ["looper-phone-main"]


class TestBeamPush:
    def test_push_now_delivers_to_peer_activity(self, env, phone):
        other = AndroidDevice("other", env)
        try:
            receiver = other.start_activity(CollectingActivity)
            env.bring_together(phone.port, other.port)
            delivered = phone.nfc_adapter.push_now(msg(b"beamed"))
            assert delivered == ["other"]
            assert receiver.intents.wait_for_count(1)
            intent = receiver.intents.snapshot()[0]
            assert intent.is_beam
            assert intent.require_extra(EXTRA_NDEF_MESSAGES)[0] == msg(b"beamed")
        finally:
            other.shutdown()

    def test_push_now_without_peer_raises(self, phone):
        with pytest.raises(BeamError):
            phone.nfc_adapter.push_now(msg())

    def test_auto_push_on_peer_entered(self, env, phone):
        other = AndroidDevice("other", env)
        try:
            receiver = other.start_activity(CollectingActivity)
            phone.start_activity(CollectingActivity)
            phone.nfc_adapter.set_ndef_push_message(msg(b"auto"))
            env.bring_together(phone.port, other.port)
            assert receiver.intents.wait_for_count(1)
            intent = receiver.intents.snapshot()[0]
            assert intent.require_extra(EXTRA_NDEF_MESSAGES)[0] == msg(b"auto")
        finally:
            other.shutdown()

    def test_auto_push_callback_source(self, env, phone):
        other = AndroidDevice("other", env)
        try:
            receiver = other.start_activity(CollectingActivity)
            phone.start_activity(CollectingActivity)
            phone.nfc_adapter.set_ndef_push_message(lambda: msg(b"dynamic"))
            env.bring_together(phone.port, other.port)
            assert receiver.intents.wait_for_count(1)
        finally:
            other.shutdown()

    def test_beam_not_received_when_adapter_disabled(self, env, phone):
        """Radio-level delivery succeeds, but a disabled receiving adapter
        drops the message before any activity sees it."""
        other = AndroidDevice("other", env)
        try:
            receiver = other.start_activity(CollectingActivity)
            other.nfc_adapter.set_enabled(False)
            env.bring_together(phone.port, other.port)
            assert phone.nfc_adapter.push_now(msg()) == ["other"]
            assert other.sync()
            assert len(receiver.intents) == 0
        finally:
            other.shutdown()
