"""Unit tests for the injectable clocks."""

import threading
import time

import pytest

from repro.clock import Clock, ManualClock, SystemClock


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_advances_time(self):
        clock = SystemClock()
        before = clock.now()
        clock.sleep(0.02)
        assert clock.now() - before >= 0.015

    def test_negative_sleep_is_noop(self):
        SystemClock().sleep(-1)

    def test_satisfies_protocol(self):
        assert isinstance(SystemClock(), Clock)
        assert isinstance(ManualClock(), Clock)


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(start=5.0).now() == 5.0

    def test_advance(self):
        clock = ManualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_sleep_advances_instead_of_blocking(self):
        clock = ManualClock()
        start = time.monotonic()
        clock.sleep(100.0)
        assert time.monotonic() - start < 1.0
        assert clock.now() == 100.0

    def test_backwards_movement_rejected(self):
        clock = ManualClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set(5.0)
        with pytest.raises(ValueError):
            clock.sleep(-1)

    def test_set_jumps_forward(self):
        clock = ManualClock()
        clock.set(42.0)
        assert clock.now() == 42.0

    def test_wait_until_wakes_on_advance(self):
        clock = ManualClock()
        reached = []

        def waiter():
            reached.append(clock.wait_until(5.0, real_timeout=2.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        clock.advance(5.0)
        thread.join(2.0)
        assert reached == [True]

    def test_wait_until_times_out_in_real_time(self):
        clock = ManualClock()
        assert not clock.wait_until(5.0, real_timeout=0.05)
