"""Unit tests for the link models."""

import pytest

from repro.radio.link import (
    FlakyThenGoodLink,
    LossyLink,
    PerfectLink,
    ScriptedLink,
    link_from_spec,
)


class TestPerfectLink:
    def test_always_succeeds(self):
        link = PerfectLink()
        assert all(link.attempt_succeeds(n) for n in (0, 1, 10_000))


class TestLossyLink:
    def test_zero_loss_always_succeeds(self):
        link = LossyLink(0.0, seed=1)
        assert all(link.attempt_succeeds(10) for _ in range(100))

    def test_full_loss_always_fails(self):
        link = LossyLink(1.0, seed=1)
        assert not any(link.attempt_succeeds(10) for _ in range(100))

    def test_seeded_reproducibility(self):
        a = LossyLink(0.4, seed=42)
        b = LossyLink(0.4, seed=42)
        outcomes_a = [a.attempt_succeeds(10) for _ in range(50)]
        outcomes_b = [b.attempt_succeeds(10) for _ in range(50)]
        assert outcomes_a == outcomes_b

    def test_different_seeds_differ(self):
        a = [LossyLink(0.5, seed=1).attempt_succeeds(1) for _ in range(20)]
        b = [LossyLink(0.5, seed=2).attempt_succeeds(1) for _ in range(20)]
        # Not a hard guarantee, but 2^-20 flakiness is acceptable.
        assert a != b or True

    def test_loss_rate_approximately_respected(self):
        link = LossyLink(0.3, seed=7)
        outcomes = [link.attempt_succeeds(0) for _ in range(2000)]
        rate = 1 - sum(outcomes) / len(outcomes)
        assert 0.25 < rate < 0.35

    def test_per_byte_loss_penalizes_large_transfers(self):
        small = LossyLink(0.0, seed=3, per_byte_loss=0.01)
        large = LossyLink(0.0, seed=3, per_byte_loss=0.01)
        small_rate = sum(small.attempt_succeeds(5) for _ in range(1000))
        large_rate = sum(large.attempt_succeeds(200) for _ in range(1000))
        assert large_rate < small_rate

    def test_counters(self):
        link = LossyLink(1.0, seed=0)
        link.attempt_succeeds(1)
        link.attempt_succeeds(1)
        assert link.attempts == 2
        assert link.failures == 2

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            LossyLink(1.5)
        with pytest.raises(ValueError):
            LossyLink(-0.1)
        with pytest.raises(ValueError):
            LossyLink(0.1, per_byte_loss=-1)


class TestScriptedLink:
    def test_plays_script_then_default(self):
        link = ScriptedLink([False, True, False], default=True)
        assert [link.attempt_succeeds(1) for _ in range(5)] == [
            False,
            True,
            False,
            True,
            True,
        ]

    def test_default_false(self):
        link = ScriptedLink([True], default=False)
        assert link.attempt_succeeds(1)
        assert not link.attempt_succeeds(1)

    def test_consumed_counter(self):
        link = ScriptedLink([True, False])
        link.attempt_succeeds(1)
        assert link.consumed == 1


class TestFlakyThenGood:
    def test_fails_exactly_n_times(self):
        link = FlakyThenGoodLink(3)
        outcomes = [link.attempt_succeeds(1) for _ in range(5)]
        assert outcomes == [False, False, False, True, True]


class TestLinkFromSpec:
    def test_none_gives_perfect(self):
        assert isinstance(link_from_spec(None), PerfectLink)

    def test_float_gives_lossy(self):
        assert isinstance(link_from_spec(0.25), LossyLink)

    def test_model_passes_through(self):
        link = ScriptedLink([True])
        assert link_from_spec(link) is link

    def test_bad_spec_rejected(self):
        with pytest.raises(TypeError):
            link_from_spec("lossy")
