"""The per-port radio transaction scheduler: batched tap windows.

Co-located references (several references bound to one tag on one
device) share a single connect/anticollision round per tap window
instead of paying it per operation. The batching must be invisible to
semantics: per-reference FIFO, global enqueue order across references,
fences (reads, raw writes, locks, formats) never reordered, partial
batches settled honestly when the link tears mid-window.
"""

import pytest

from repro.android.device import AndroidDevice
from repro.android.nfc.tech import Tag
from repro.concurrent import EventLog, wait_until
from repro.core.reference import TagReference
from repro.radio.environment import RfidEnvironment
from repro.radio.link import ScriptedLink
from repro.radio.timing import NO_DELAY, NOMINAL, TransferTiming

from tests.conftest import (
    PlainNfcActivity,
    make_reference,
    string_converters,
    text_message,
    text_tag,
)


def co_located_refs(activity, tag, phone, count, **kwargs):
    """``count`` distinct references to one tag (bypasses the
    per-activity identity map -- think one reference per activity, all
    sharing the device's radio)."""
    read_conv, write_conv = string_converters()
    return [
        TagReference(Tag(tag, phone.port), activity, read_conv, write_conv, **kwargs)
        for _ in range(count)
    ]


@pytest.fixture
def tag():
    return text_tag("seed")


class TestSessionTiming:
    def test_split_is_a_refinement_not_a_change(self):
        timing = TransferTiming(base_seconds=0.02, seconds_per_byte=1e-4)
        for n_bytes in (0, 1, 137):
            assert timing.connect_seconds + timing.batched_operation_seconds(
                n_bytes
            ) == pytest.approx(timing.operation_seconds(n_bytes))

    def test_no_delay_stays_free(self):
        assert NO_DELAY.connect_seconds == 0.0
        assert NO_DELAY.batched_operation_seconds(1000) == 0.0

    def test_connect_dominates_nominal(self):
        # The whole point: the once-per-window share is the big one.
        assert NOMINAL.connect_seconds > NOMINAL.per_op_seconds


class TestBatchedWindow:
    def test_one_connect_serves_all_colocated_references(
        self, scenario, phone, activity, tag
    ):
        refs = co_located_refs(activity, tag, phone, 8)
        done = EventLog()
        for index, ref in enumerate(refs):
            ref.write(f"v{index}", on_written=lambda _r, i=index: done.append(i))
        connects_before = phone.port.connects
        scheduler = phone.tx_scheduler
        windows_before = scheduler.windows
        scenario.put(tag, phone)
        assert done.wait_for_count(8)
        assert phone.port.connects - connects_before == 1
        assert scheduler.windows - windows_before == 1
        assert scheduler.max_batch >= 8

    def test_global_enqueue_order_across_references(
        self, scenario, phone, activity, tag
    ):
        a, b = co_located_refs(activity, tag, phone, 2)
        order = EventLog()
        a.write("a1", on_written=lambda _r: order.append("a1"))
        b.write("b1", on_written=lambda _r: order.append("b1"))
        a.write("a2", on_written=lambda _r: order.append("a2"))
        b.write("b2", on_written=lambda _r: order.append("b2"))
        scenario.put(tag, phone)
        assert order.wait_for_count(4)
        assert order.snapshot() == ["a1", "b1", "a2", "b2"]

    def test_per_reference_fifo_survives_batching(
        self, scenario, phone, activity, tag
    ):
        (ref,) = co_located_refs(activity, tag, phone, 1)
        order = EventLog()
        ref.write("w1", on_written=lambda _r: order.append("w1"))
        ref.write("w2", on_written=lambda _r: order.append("w2"))
        ref.read(on_read=lambda r: order.append("read"))
        ref.write("w3", on_written=lambda _r: order.append("w3"))
        scenario.put(tag, phone)
        assert order.wait_for_count(4)
        assert order.snapshot() == ["w1", "w2", "read", "w3"]
        assert wait_until(lambda: tag.read_ndef()[0].payload == b"w3")

    def test_batched_ops_counted(self, scenario, phone, activity, tag):
        refs = co_located_refs(activity, tag, phone, 3)
        done = EventLog()
        scheduler = phone.tx_scheduler
        before = scheduler.batched_ops
        for ref in refs:
            ref.write("x", on_written=lambda _r: done.append(1))
        scenario.put(tag, phone)
        assert done.wait_for_count(3)
        assert scheduler.batched_ops - before == 3


class TestFences:
    def test_raw_write_fences_other_references(
        self, scenario, phone, activity, tag
    ):
        """w1 | FENCE(raw) | w2: w2 is enqueued after the fence and must
        not overtake it, even though it belongs to another reference."""
        a, b = co_located_refs(activity, tag, phone, 2)
        order = EventLog()
        a.write("w1", on_written=lambda _r: order.append("w1"))
        b.write_raw(
            text_message("guard-record"),
            on_written=lambda _r: order.append("fence"),
        )
        a.write("w2", on_written=lambda _r: order.append("w2"))
        scenario.put(tag, phone)
        assert order.wait_for_count(3)
        assert order.snapshot() == ["w1", "fence", "w2"]

    def test_read_fence_waits_for_older_writes_of_other_references(
        self, scenario, phone, activity, tag
    ):
        a, b = co_located_refs(activity, tag, phone, 2)
        order = EventLog()
        a.write("payload", on_written=lambda _r: order.append("write"))
        b.read(on_read=lambda r: order.append(("read", r.cached)))
        scenario.put(tag, phone)
        assert order.wait_for_count(2)
        # The read ran after the older write and observed its payload.
        assert order.snapshot() == ["write", ("read", "payload")]


class TestPartialBatch:
    def test_torn_transfer_splits_the_window(self, scenario, activity, tag):
        """A mid-batch tear settles what landed, keeps the torn
        operation queued, and reconnects for the rest."""
        phone = scenario.add_phone(
            "tear-phone", link=ScriptedLink([True, False], default=True)
        )
        app = scenario.start(phone, PlainNfcActivity)
        refs = co_located_refs(app, tag, phone, 3)
        done = EventLog()
        for index, ref in enumerate(refs):
            ref.write(f"v{index}", on_written=lambda _r, i=index: done.append(i))
        connects_before = phone.port.connects
        scenario.put(tag, phone)
        assert done.wait_for_count(3)
        # The tear cost at least one reconnect, but batching still beat
        # three standalone rounds... unless the retry landed third.
        assert phone.port.connects - connects_before >= 2
        for ref in refs:
            assert ref.successes == 1


class TestOptOut:
    def test_batched_false_reference_stays_standalone(
        self, scenario, phone, activity, tag
    ):
        (ref,) = co_located_refs(activity, tag, phone, 1, batched=False)
        assert phone.tx_scheduler.references_for(tag) == []
        done = EventLog()
        ref.write("solo-1", on_written=lambda _r: done.append(1))
        ref.write("solo-2", on_written=lambda _r: done.append(2))
        connects_before = phone.port.connects
        scenario.put(tag, phone)
        assert done.wait_for_count(2)
        # Standalone path: one connect per operation.
        assert phone.port.connects - connects_before == 2

    def test_threaded_reference_never_batches(
        self, scenario, phone, activity, tag
    ):
        ref = make_reference(activity, tag, phone, threaded=True)
        assert phone.tx_scheduler.references_for(tag) == []
        done = EventLog()
        ref.write("threaded", on_written=lambda _r: done.append(1))
        scenario.put(tag, phone)
        assert done.wait_for_count(1)


class TestLifecycle:
    def test_stop_unregisters_from_the_scheduler(
        self, scenario, phone, activity, tag
    ):
        a, b = co_located_refs(activity, tag, phone, 2)
        scheduler = phone.tx_scheduler
        assert len(scheduler.references_for(tag)) == 2
        a.stop()
        assert scheduler.references_for(tag) == [b]
        b.stop()
        assert scheduler.references_for(tag) == []

    def test_last_unregister_discards_stale_ready_key(
        self, scenario, phone, activity, tag
    ):
        """A departed tag must not leave a runnable key behind: stale
        keys wake workers for empty batches forever."""
        (ref,) = co_located_refs(activity, tag, phone, 1)
        scheduler = phone.tx_scheduler
        scenario.put(tag, phone)
        done = EventLog()
        ref.write("bye", on_written=lambda _r: done.append(1))
        assert done.wait_for_count(1)
        scheduler._ready.mark(tag)  # simulate a wakeup racing the stop
        ref.stop()
        assert scheduler.references_for(tag) == []
        assert [key for key, _ in scheduler._ready.snapshot()] == []

    def test_shutdown_closes_the_scheduler(self):
        env = RfidEnvironment()
        device = AndroidDevice("closer", env)
        scheduler = device.tx_scheduler  # force creation
        device.shutdown()
        assert scheduler._closed
        # Idempotent, and registration after close is refused.
        scheduler.close()

    def test_work_enqueued_while_present_drains_promptly(
        self, scenario, phone, activity, tag
    ):
        scenario.put(tag, phone)
        (ref,) = co_located_refs(activity, tag, phone, 1)
        done = EventLog()
        ref.write("live", on_written=lambda _r: done.append(1))
        assert done.wait_for_count(1)
        assert wait_until(lambda: tag.read_ndef()[0].payload == b"live")
