"""Tests for the pluggable transport seam."""

import pytest

from repro.clock import ManualClock
from repro.errors import RadioError
from repro.radio.environment import RfidEnvironment
from repro.radio.events import TagEntered, TagLeft
from repro.radio.trace import RadioTracer
from repro.radio.transport import (
    LocalFieldTransport,
    RelayTransport,
    TraceTransport,
    Transport,
)
from repro.tags.factory import make_tag, make_tags


class TestAttachment:
    def test_default_transport_is_local_field(self):
        env = RfidEnvironment()
        assert isinstance(env.transport, LocalFieldTransport)

    def test_transport_cannot_serve_two_environments(self):
        transport = LocalFieldTransport()
        RfidEnvironment(transport=transport)
        with pytest.raises(RadioError):
            RfidEnvironment(transport=transport)

    def test_unattached_transport_has_no_environment(self):
        with pytest.raises(RadioError):
            LocalFieldTransport().environment

    def test_base_transport_rejects_relaying(self):
        env = RfidEnvironment()
        alice = env.create_port("alice")
        bob = env.create_port("bob")
        with pytest.raises(RadioError):
            env.pair_fields(alice, bob)


class TestLocalFieldTransport:
    """The behavior-preserving default: port sees exactly its own field."""

    def test_environment_delegates_field_state(self):
        env = RfidEnvironment()
        alice = env.create_port("alice")
        bob = env.create_port("bob")
        tag = make_tag()
        env.move_tag_into_field(tag, alice)
        assert env.tag_in_field(tag, alice)
        assert not env.tag_in_field(tag, bob)
        assert env.ports_seeing(tag) == ["alice"]
        assert env.field_size(alice) == 1
        env.remove_tag_from_field(tag, alice)
        assert env.ports_seeing(tag) == []

    def test_double_insert_is_a_noop(self):
        env = RfidEnvironment()
        alice = env.create_port("alice")
        tag = make_tag()
        events = []
        alice.add_field_listener(lambda e: events.append(type(e).__name__))
        env.move_tag_into_field(tag, alice)
        env.move_tag_into_field(tag, alice)
        assert events == ["TagEntered"]

    def test_unknown_port_raises(self):
        transport = LocalFieldTransport()
        with pytest.raises(RadioError):
            transport.sees("ghost", make_tag())

    def test_bulk_insert_reports_only_fresh_tags(self):
        env = RfidEnvironment()
        alice = env.create_port("alice")
        tags = make_tags(3)
        env.move_tag_into_field(tags[0], alice)
        assert env.move_tags_into_field(tags, alice) == 2
        assert env.field_size(alice) == 3
        assert env.remove_tags_from_field(tags, alice) == 3


class TestRelayTransport:
    def make_world(self, latency=0.0):
        env = RfidEnvironment(transport=RelayTransport(latency_seconds=latency))
        reader = env.create_port("reader")
        bench = env.create_port("bench")
        return env, reader, bench

    def test_negative_latency_rejected(self):
        with pytest.raises(RadioError):
            RelayTransport(latency_seconds=-0.1)

    def test_cannot_relay_own_field(self):
        env, reader, _ = self.make_world()
        with pytest.raises(RadioError):
            env.pair_fields(reader, reader)

    def test_linking_surfaces_existing_remote_tags(self):
        env, reader, bench = self.make_world()
        tag = make_tag()
        env.move_tag_into_field(tag, bench)
        seen = []
        reader.add_field_listener(lambda e: seen.append(e))
        assert env.pair_fields(reader, bench) == 1
        assert [type(e).__name__ for e in seen] == ["TagEntered"]
        assert env.tag_in_field(tag, reader)
        assert env.tag_in_field(tag, bench)
        assert env.ports_seeing(tag) == ["bench", "reader"]

    def test_remote_arrivals_reach_the_reader_live(self):
        env, reader, bench = self.make_world()
        env.pair_fields(reader, bench)
        seen = []
        reader.add_field_listener(lambda e: seen.append(type(e).__name__))
        tag = make_tag()
        env.move_tag_into_field(tag, bench)
        env.remove_tag_from_field(tag, bench)
        assert seen == ["TagEntered", "TagLeft"]

    def test_unpairing_withdraws_relayed_tags_only(self):
        env, reader, bench = self.make_world()
        local = make_tag()
        remote = make_tag()
        env.move_tag_into_field(local, reader)
        env.move_tag_into_field(remote, bench)
        env.pair_fields(reader, bench)
        assert env.unpair_fields(reader, bench) == 1
        assert env.tag_in_field(local, reader)
        assert not env.tag_in_field(remote, reader)

    def test_no_duplicate_event_when_tag_in_both_fields(self):
        """A tag seen via its own field must not re-enter via the relay."""
        env, reader, bench = self.make_world()
        tag = make_tag()
        env.move_tag_into_field(tag, reader)
        env.pair_fields(reader, bench)
        seen = []
        reader.add_field_listener(lambda e: seen.append(type(e).__name__))
        env.move_tag_into_field(tag, bench)
        assert seen == []  # already visible: no second TagEntered
        env.remove_tag_from_field(tag, bench)
        assert seen == []  # still visible locally: no TagLeft either
        env.remove_tag_from_field(tag, reader)
        assert seen == ["TagLeft"]

    def test_link_is_directional(self):
        env, reader, bench = self.make_world()
        env.pair_fields(reader, bench)
        tag = make_tag()
        env.move_tag_into_field(tag, reader)
        assert not env.tag_in_field(tag, bench)

    def test_relayed_pairs_and_repeat_links(self):
        env, reader, bench = self.make_world()
        assert env.pair_fields(reader, bench) == 0
        assert env.pair_fields(reader, bench) == 0  # idempotent
        assert env.transport.relayed_pairs() == [("reader", "bench")]

    def test_overhead_charged_only_for_relayed_tags(self):
        env, reader, bench = self.make_world(latency=0.25)
        local = make_tag()
        remote = make_tag()
        env.move_tag_into_field(local, reader)
        env.move_tag_into_field(remote, bench)
        env.pair_fields(reader, bench)
        assert env.transfer_overhead_seconds(reader, local) == 0.0
        assert env.transfer_overhead_seconds(reader, remote) == 0.25
        assert env.transfer_overhead_seconds(bench, remote) == 0.0

    def test_bulk_moves_relay_to_reader(self):
        env, reader, bench = self.make_world()
        env.pair_fields(reader, bench)
        tags = make_tags(4)
        entered = []
        reader.add_field_listener(
            lambda e: entered.append(e) if isinstance(e, TagEntered) else None
        )
        assert env.move_tags_into_field(tags, bench) == 4
        assert len(entered) == 4
        left = []
        reader.add_field_listener(
            lambda e: left.append(e) if isinstance(e, TagLeft) else None
        )
        assert env.remove_tags_from_field(tags, bench) == 4
        assert len(left) == 4


class TestTraceTransport:
    def record(self):
        clock = ManualClock()
        env = RfidEnvironment(clock=clock)
        alice = env.create_port("alice")
        tag = make_tag()
        tracer = RadioTracer(env)
        env.move_tag_into_field(tag, alice)
        clock.advance(1.0)
        env.remove_tag_from_field(tag, alice)
        clock.advance(1.0)
        env.move_tag_into_field(tag, alice)
        return tracer.to_json(), tag

    def fresh_world(self, trace_json, tag):
        clock = ManualClock()
        transport = TraceTransport.from_json(trace_json, {tag.uid_hex: tag})
        env = RfidEnvironment(clock=clock, transport=transport)
        port = env.create_port("alice")
        return env, port, transport, clock

    def test_direct_mutation_rejected(self):
        trace_json, tag = self.record()
        env, port, _, _ = self.fresh_world(trace_json, tag)
        with pytest.raises(RadioError):
            env.move_tag_into_field(tag, port)
        with pytest.raises(RadioError):
            env.move_tags_into_field([tag], port)

    def test_play_applies_whole_trace(self):
        trace_json, tag = self.record()
        env, port, transport, clock = self.fresh_world(trace_json, tag)
        assert transport.remaining_events == 3
        assert transport.play() == 3
        assert transport.remaining_events == 0
        assert env.tag_in_field(tag, port)
        assert clock.now() == 2.0
        assert transport.play() == 0  # exhausted

    def test_step_keeps_the_recorded_timeline(self):
        """Stepping must not re-pay absolute timestamps as fresh deltas."""
        trace_json, tag = self.record()
        env, port, transport, clock = self.fresh_world(trace_json, tag)
        assert transport.step() == 1
        assert clock.now() == 0.0 and env.tag_in_field(tag, port)
        assert transport.step() == 1
        assert clock.now() == 1.0 and not env.tag_in_field(tag, port)
        assert transport.step() == 1
        assert clock.now() == 2.0 and env.tag_in_field(tag, port)

    def test_playback_drives_port_listeners(self):
        trace_json, tag = self.record()
        env, port, transport, clock = self.fresh_world(trace_json, tag)
        seen = []
        port.add_field_listener(
            lambda e: seen.append((clock.now(), type(e).__name__))
        )
        transport.play()
        assert seen == [
            (0.0, "TagEntered"),
            (1.0, "TagLeft"),
            (2.0, "TagEntered"),
        ]

    def test_two_playbacks_are_identical(self):
        trace_json, tag = self.record()

        def run():
            env, port, transport, clock = self.fresh_world(trace_json, tag)
            seen = []
            port.add_field_listener(
                lambda e: seen.append((clock.now(), type(e).__name__))
            )
            transport.play()
            return seen, clock.now()

        assert run() == run()


class TestCustomTransport:
    def test_subclass_hooks_are_sufficient(self):
        """The documented seam: a custom transport only fills in topology."""

        class Everywhere(LocalFieldTransport):
            """Every port sees every tag (a broadcast field)."""

            def _observers_of(self, port_name):
                return sorted(self._fields)

            def sees(self, port_name, tag):
                self._field(port_name)
                return any(tag in field for field in self._fields.values())

            def visible_tags(self, port_name):
                self._field(port_name)
                out = []
                for field in self._fields.values():
                    out.extend(field)
                return out

        env = RfidEnvironment(transport=Everywhere())
        alice = env.create_port("alice")
        bob = env.create_port("bob")
        seen = []
        bob.add_field_listener(lambda e: seen.append(type(e).__name__))
        tag = make_tag()
        env.move_tag_into_field(tag, alice)
        assert env.tag_in_field(tag, bob)
        assert seen == ["TagEntered"]

    def test_abstract_base_requires_topology_methods(self):
        transport = Transport()
        with pytest.raises(NotImplementedError):
            transport.add_port("x")
