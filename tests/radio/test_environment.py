"""Unit tests for the shared radio world: fields, taps, proximity."""

import pytest

from repro.errors import RadioError
from repro.radio.environment import RfidEnvironment
from repro.radio.events import PeerEntered, PeerLeft, TagEntered, TagLeft
from repro.tags.factory import make_tag


@pytest.fixture
def env():
    return RfidEnvironment()


class TestPorts:
    def test_create_and_lookup(self, env):
        port = env.create_port("alice")
        assert env.port("alice") is port
        assert env.port_names() == ["alice"]

    def test_duplicate_name_rejected(self, env):
        env.create_port("alice")
        with pytest.raises(RadioError):
            env.create_port("alice")

    def test_unknown_port_rejected(self, env):
        with pytest.raises(RadioError):
            env.port("ghost")

    def test_foreign_port_rejected(self, env):
        other_env = RfidEnvironment()
        foreign = other_env.create_port("bob")
        tag = make_tag()
        with pytest.raises(RadioError):
            env.move_tag_into_field(tag, foreign)


class TestFields:
    def test_move_in_and_out(self, env):
        port = env.create_port("alice")
        tag = make_tag()
        assert not env.tag_in_field(tag, port)
        env.move_tag_into_field(tag, port)
        assert env.tag_in_field(tag, port)
        env.remove_tag_from_field(tag, port)
        assert not env.tag_in_field(tag, port)

    def test_idempotent_moves(self, env):
        port = env.create_port("alice")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        env.move_tag_into_field(tag, port)
        assert env.tags_in_field(port) == [tag]
        env.remove_tag_from_field(tag, port)
        env.remove_tag_from_field(tag, port)
        assert env.tags_in_field(port) == []

    def test_tag_visible_to_two_ports(self, env):
        alice = env.create_port("alice")
        bob = env.create_port("bob")
        tag = make_tag()
        env.move_tag_into_field(tag, alice)
        env.move_tag_into_field(tag, bob)
        assert env.ports_seeing(tag) == ["alice", "bob"]

    def test_fields_are_independent(self, env):
        alice = env.create_port("alice")
        bob = env.create_port("bob")
        tag = make_tag()
        env.move_tag_into_field(tag, alice)
        assert not env.tag_in_field(tag, bob)

    def test_events_fire_once_per_transition(self, env):
        port = env.create_port("alice")
        events = []
        port.add_field_listener(events.append)
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        env.move_tag_into_field(tag, port)  # no duplicate event
        env.remove_tag_from_field(tag, port)
        assert events == [TagEntered(tag), TagLeft(tag)]

    def test_removed_listener_not_called(self, env):
        port = env.create_port("alice")
        events = []
        port.add_field_listener(events.append)
        port.remove_field_listener(events.append)
        env.move_tag_into_field(make_tag(), port)
        assert events == []


class TestTap:
    def test_tap_context_manager(self, env):
        port = env.create_port("alice")
        tag = make_tag()
        with env.tap(tag, port):
            assert env.tag_in_field(tag, port)
        assert not env.tag_in_field(tag, port)

    def test_tap_removes_on_exception(self, env):
        port = env.create_port("alice")
        tag = make_tag()
        with pytest.raises(ValueError):
            with env.tap(tag, port):
                raise ValueError("boom")
        assert not env.tag_in_field(tag, port)

    def test_tap_for_removes_after_delay(self, env):
        port = env.create_port("alice")
        tag = make_tag()
        timer = env.tap_for(tag, port, seconds=0.02)
        assert env.tag_in_field(tag, port)
        timer.join(2.0)
        assert not env.tag_in_field(tag, port)


class TestProximity:
    def test_bring_together_and_separate(self, env):
        alice = env.create_port("alice")
        bob = env.create_port("bob")
        env.bring_together(alice, bob)
        assert env.in_beam_range(alice, bob)
        assert env.peers_of(alice) == [bob]
        assert env.peers_of(bob) == [alice]
        env.separate(alice, bob)
        assert not env.in_beam_range(alice, bob)
        assert env.peers_of(alice) == []

    def test_self_proximity_rejected(self, env):
        alice = env.create_port("alice")
        with pytest.raises(RadioError):
            env.bring_together(alice, alice)

    def test_peer_events(self, env):
        alice = env.create_port("alice")
        bob = env.create_port("bob")
        events = []
        alice.add_field_listener(events.append)
        env.bring_together(alice, bob)
        env.bring_together(alice, bob)  # idempotent, one event
        env.separate(alice, bob)
        assert events == [PeerEntered("bob"), PeerLeft("bob")]

    def test_three_way_proximity(self, env):
        a = env.create_port("a")
        b = env.create_port("b")
        c = env.create_port("c")
        env.bring_together(a, b)
        env.bring_together(a, c)
        assert env.peers_of(a) == [b, c]
        assert env.peers_of(b) == [a]
        assert not env.in_beam_range(b, c)
