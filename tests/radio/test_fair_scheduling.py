"""Cross-tag fair scheduling: policies, quanta, fences, tears, telemetry.

With several tags co-present in one field, the transaction scheduler
shares the radio under a pluggable policy. These tests pin the policy
mechanics (deficit credit/debit, quantum renewal when alone), the
isolation guarantees (fences and tears are strictly per tag), and the
per-tag service telemetry.
"""

import math

import pytest

from repro.concurrent import EventLog, wait_until
from repro.core.reference import TagReference
from repro.android.nfc.tech import Tag
from repro.errors import MorenaError
from repro.radio.link import ScriptedLink
from repro.radio.txscheduler import (
    POLICIES,
    CrossTagPolicy,
    DeficitPolicy,
    RoundRobinPolicy,
    SequentialDrainPolicy,
    _op_cost,
    make_policy,
)

from tests.conftest import (
    PlainNfcActivity,
    make_reference,
    string_converters,
    text_message,
    text_tag,
)


def co_located_refs(activity, tag, phone, count, **kwargs):
    read_conv, write_conv = string_converters()
    return [
        TagReference(Tag(tag, phone.port), activity, read_conv, write_conv, **kwargs)
        for _ in range(count)
    ]


class TestPolicyRegistry:
    def test_default_is_deficit(self):
        assert isinstance(make_policy(None), DeficitPolicy)

    def test_names_resolve(self):
        assert isinstance(make_policy("drain"), SequentialDrainPolicy)
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(make_policy("deficit"), DeficitPolicy)
        assert set(POLICIES) == {"drain", "round_robin", "deficit"}

    def test_instances_pass_through(self):
        policy = RoundRobinPolicy(quantum_ops=3)
        assert make_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(MorenaError, match="unknown cross-tag"):
            make_policy("fifo")

    def test_invalid_quanta_rejected(self):
        with pytest.raises(MorenaError):
            RoundRobinPolicy(quantum_ops=0)
        with pytest.raises(MorenaError):
            DeficitPolicy(credit_ops=-1)


class TestPolicyMechanics:
    def test_op_cost_scales_with_bytes(self):
        assert _op_cost(0) == 1.0
        assert _op_cost(256) == 2.0
        assert _op_cost(-5) == 1.0  # defensive: unknown sizes cost base

    def test_drain_budget_is_unbounded(self):
        policy = SequentialDrainPolicy()
        assert policy.begin_visit("tag", depth=10_000) == math.inf
        assert not policy.rotates

    def test_round_robin_budget_ignores_depth(self):
        policy = RoundRobinPolicy(quantum_ops=4)
        assert policy.begin_visit("tag", depth=1) == 4.0
        assert policy.begin_visit("tag", depth=1_000) == 4.0
        assert policy.rotates

    def test_deficit_credits_by_depth_sublinearly(self):
        policy = DeficitPolicy(credit_ops=6.0)
        shallow = policy.begin_visit("a", depth=1)
        deep = policy.begin_visit("b", depth=64)
        # Deeper backlog earns a strictly larger but *bounded* quantum:
        # the hot tag can never monopolize a round.
        assert shallow < deep
        assert deep <= shallow * 1.5
        # The depth weight saturates at the cap.
        assert policy.begin_visit("c", depth=10_000) == pytest.approx(deep)

    def test_deficit_carries_over_and_is_capped(self):
        policy = DeficitPolicy(credit_ops=6.0, carry_rounds=2.0)
        first = policy.begin_visit("a", depth=0)
        # Nothing consumed: the next visit carries the unused credit.
        second = policy.begin_visit("a", depth=0)
        assert second > first
        # But never beyond carry_rounds of the max per-visit credit.
        for _ in range(50):
            budget = policy.begin_visit("a", depth=0)
        cap = policy.credit_ops * policy.weight(policy.depth_cap)
        assert budget <= cap * policy.carry_rounds + 1e-9

    def test_deficit_debits_and_resets(self):
        policy = DeficitPolicy(credit_ops=6.0)
        policy.begin_visit("a", depth=0)
        policy.consumed("a", 4.0)
        assert policy._deficit["a"] == pytest.approx(2.0)
        policy.reset("a")
        assert "a" not in policy._deficit


class TestPolicySelection:
    def test_device_policy_kwarg_reaches_the_scheduler(self, scenario):
        phone = scenario.add_phone("rr-phone", tx_policy="round_robin")
        assert phone.tx_scheduler.policy.name == "round_robin"

    def test_scenario_default_is_deficit(self, phone):
        assert phone.tx_scheduler.policy.name == "deficit"

    def test_set_policy_swaps_at_runtime(self, phone):
        scheduler = phone.tx_scheduler
        scheduler.set_policy("drain")
        assert scheduler.policy.name == "drain"
        with pytest.raises(MorenaError):
            scheduler.set_policy("nope")
        assert scheduler.policy.name == "drain"


class TestCrossTagInterleaving:
    def test_deficit_serves_cold_tag_before_hot_backlog_drains(self):
        """1 hot tag with a deep backlog + 1 cold tag with one write:
        the cold write must not wait for the whole hot drain. Real (small)
        per-op latency keeps the hot drain from finishing before the
        cold tag's field event lands."""
        from repro.harness.scenario import Scenario
        from repro.radio.timing import TransferTiming

        timing = TransferTiming(base_seconds=0.004, seconds_per_byte=0.0)
        with Scenario(timing=timing) as scenario:
            phone = scenario.add_phone("fair-phone")
            activity = scenario.start(phone, PlainNfcActivity)
            hot_tag, cold_tag = text_tag("hot"), text_tag("cold")
            (hot,) = co_located_refs(activity, hot_tag, phone, 1)
            (cold,) = co_located_refs(activity, cold_tag, phone, 1)
            order = EventLog()
            for index in range(24):
                hot.write(
                    f"h{index}",
                    coalesce=False,
                    timeout=30.0,
                    on_written=lambda _r, i=index: order.append(f"h{i}"),
                )
            cold.write(
                "c0", timeout=30.0, on_written=lambda _r: order.append("c0")
            )
            scenario.env.move_tags_into_field([hot_tag, cold_tag], phone.port)
            assert order.wait_for_count(25, timeout=30)
            events = order.snapshot()
            # The cold write landed within the first deficit quantum's
            # reach, far before the hot backlog drained.
            assert events.index("c0") < events.index("h23")
            assert events.index("c0") <= 16

    def test_drain_policy_preserves_whole_tag_service(self, scenario, activity):
        """Ablation: under the legacy drain the first-marked tag's whole
        backlog lands before the second tag is served at all."""
        phone = scenario.add_phone("drain-phone", tx_policy="drain")
        app = scenario.start(phone, PlainNfcActivity)
        a_tag, b_tag = text_tag("a"), text_tag("b")
        (a,) = co_located_refs(app, a_tag, phone, 1)
        (b,) = co_located_refs(app, b_tag, phone, 1)
        order = EventLog()
        for index in range(10):
            a.write(
                f"a{index}",
                coalesce=False,
                on_written=lambda _r, i=index: order.append(f"a{i}"),
            )
        b.write("b0", on_written=lambda _r: order.append("b0"))
        # Both tags enter before any drain starts: enqueue while absent,
        # then bulk-enter so the ready order is the insertion order.
        scenario.env.move_tags_into_field([a_tag, b_tag], phone.port)
        assert order.wait_for_count(11)
        assert order.snapshot()[-1] == "b0"

    def test_preemption_counted_and_connects_paid_per_visit(
        self, scenario, phone, activity
    ):
        """Two backlogged tags under deficit: visits alternate, each
        re-selection pays a fresh connect, preemptions are counted."""
        a_tag, b_tag = text_tag("a"), text_tag("b")
        (a,) = co_located_refs(activity, a_tag, phone, 1)
        (b,) = co_located_refs(activity, b_tag, phone, 1)
        done = EventLog()
        for index in range(20):
            a.write(f"a{index}", coalesce=False, on_written=lambda _r: done.append(1))
            b.write(f"b{index}", coalesce=False, on_written=lambda _r: done.append(1))
        scheduler = phone.tx_scheduler
        connects_before = phone.port.connects
        scenario.env.move_tags_into_field([a_tag, b_tag], phone.port)
        assert done.wait_for_count(40)
        assert scheduler.preemptions >= 2
        # More than one session per tag (preempted visits reconnect)...
        assert phone.port.connects - connects_before > 2
        # ...but still far below one connect per operation.
        assert phone.port.connects - connects_before < 40

    def test_lone_tag_still_pays_one_connect_despite_quanta(
        self, scenario, phone, activity
    ):
        """Fairness must not tax a lone tag: a backlog far deeper than
        one quantum still runs in a single session when no other tag is
        waiting (the budget renews in place)."""
        tag = text_tag("lone")
        refs = co_located_refs(activity, tag, phone, 4)
        done = EventLog()
        for ref in refs:
            for index in range(6):  # 24 ops >> deficit credit of ~6
                ref.write(
                    f"v{index}", coalesce=False, on_written=lambda _r: done.append(1)
                )
        connects_before = phone.port.connects
        scenario.put(tag, phone)
        assert done.wait_for_count(24)
        assert phone.port.connects - connects_before == 1
        assert phone.tx_scheduler.preemptions == 0


class TestCrossTagFenceIsolation:
    def test_fence_on_absent_tag_never_stalls_present_tag(
        self, scenario, phone, activity
    ):
        """A pending batch fence on tag A (absent) must not fence tag
        B's younger operations: fences are per-tag barriers."""
        a_tag, b_tag = text_tag("a"), text_tag("b")
        (a,) = co_located_refs(activity, a_tag, phone, 1)
        (b,) = co_located_refs(activity, b_tag, phone, 1)
        fenced = EventLog()
        done = EventLog()
        # The fence (raw write) is enqueued first, so every b-op has a
        # younger op_id than the fence.
        a.write_raw(text_message("guard"), on_written=lambda _r: fenced.append(1))
        for index in range(4):
            b.write(
                f"b{index}", coalesce=False, on_written=lambda _r: done.append(1)
            )
        scenario.put(b_tag, phone)  # only B enters
        assert done.wait_for_count(4)
        assert len(fenced) == 0  # A's fence is still pending
        scenario.put(a_tag, phone)
        assert fenced.wait_for_count(1)

    def test_fence_on_copresent_tag_fences_only_its_own_tag(
        self, scenario, phone, activity
    ):
        """Both tags present: A's fence orders A's queue; B's younger
        writes settle without waiting for it and vice versa."""
        a_tag, b_tag = text_tag("a"), text_tag("b")
        (a,) = co_located_refs(activity, a_tag, phone, 1)
        (b,) = co_located_refs(activity, b_tag, phone, 1)
        order = EventLog()
        a.write("a-before", on_written=lambda _r: order.append("a-before"))
        a.write_raw(text_message("guard"), on_written=lambda _r: order.append("a-fence"))
        a.write("a-after", on_written=lambda _r: order.append("a-after"))
        b.write("b0", on_written=lambda _r: order.append("b0"))
        scenario.env.move_tags_into_field([a_tag, b_tag], phone.port)
        assert order.wait_for_count(4)
        events = order.snapshot()
        # A's internal fence order is intact...
        assert [e for e in events if e.startswith("a")] == [
            "a-before",
            "a-fence",
            "a-after",
        ]
        # ...and B settled (a per-port fence would have ordered b0 last
        # only; the real assertion is that everything completed).
        assert "b0" in events


class TestCrossTagTearIsolation:
    def test_tear_mid_quantum_settles_only_that_tags_partial_batch(
        self, scenario, activity
    ):
        """A tear during one tag's quantum splits *that* batch; the
        co-present tag's operations still settle exactly once each."""
        phone = scenario.add_phone(
            "tear-phone", link=ScriptedLink([True, False], default=True)
        )
        app = scenario.start(phone, PlainNfcActivity)
        a_tag, b_tag = text_tag("a"), text_tag("b")
        a_refs = co_located_refs(app, a_tag, phone, 3)
        b_refs = co_located_refs(app, b_tag, phone, 3)
        done = EventLog()
        for ref in a_refs + b_refs:
            ref.write("v", on_written=lambda _r: done.append(1))
        connects_before = phone.port.connects
        scenario.env.move_tags_into_field([a_tag, b_tag], phone.port)
        assert done.wait_for_count(6)
        # Exactly-once settlement per reference on both tags.
        for ref in a_refs + b_refs:
            assert ref.successes == 1
        # The tear cost at least one reconnect beyond the per-tag visits.
        assert phone.port.connects - connects_before >= 3


class TestServiceTelemetry:
    def test_snapshot_reports_per_tag_service(self, scenario, phone, activity):
        a_tag, b_tag = text_tag("a"), text_tag("b")
        (a,) = co_located_refs(activity, a_tag, phone, 1)
        (b,) = co_located_refs(activity, b_tag, phone, 1)
        done = EventLog()
        for index in range(3):
            a.write(f"a{index}", coalesce=False, on_written=lambda _r: done.append(1))
        b.write("b0", on_written=lambda _r: done.append(1))
        scenario.env.move_tags_into_field([a_tag, b_tag], phone.port)
        assert done.wait_for_count(4)
        snapshot = phone.tx_scheduler.stats_snapshot()
        assert snapshot["policy"] == "deficit"
        assert snapshot["batched_ops"] == 4
        a_stats = snapshot["tags"][a_tag.uid_hex]
        b_stats = snapshot["tags"][b_tag.uid_hex]
        assert a_stats["ops"] == 3
        assert b_stats["ops"] == 1
        assert a_stats["quanta"] >= 1
        assert a_stats["bytes_moved"] > 0
        assert a_stats["depth_high_water"] >= 1
        assert a_stats["time_to_first_service"] >= 0.0
        assert b_stats["time_to_first_service"] >= 0.0

    def test_unregister_retires_stats_and_discards_ready_key(
        self, scenario, phone, activity
    ):
        """Satellite: the last co-located reference's departure must
        remove the tag's runnable key and fold its telemetry into the
        retired aggregate (no leak under crowd churn)."""
        tag = text_tag("leaver")
        (ref,) = co_located_refs(activity, tag, phone, 1)
        done = EventLog()
        ref.write("bye", on_written=lambda _r: done.append(1))
        scenario.put(tag, phone)
        assert done.wait_for_count(1)
        scheduler = phone.tx_scheduler
        # Force a stale runnable key, then unregister the last ref.
        scheduler._ready.mark(tag)
        ref.stop()
        assert scheduler.references_for(tag) == []
        assert [key for key, _ in scheduler._ready.snapshot()] == []
        snapshot = scheduler.stats_snapshot()
        assert tag.uid_hex not in snapshot["tags"]
        assert snapshot["retired"]["tags"] == 1
        assert snapshot["retired"]["ops"] == 1

    def test_starvation_tick_when_backlog_exists_but_nothing_settles(
        self, scenario, activity
    ):
        """A visit that finds pending-but-unserviceable work (all heads
        backed off after a tear) counts a starvation tick."""
        phone = scenario.add_phone(
            "starve-phone", link=ScriptedLink([False], default=True)
        )
        app = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("starved")
        (ref,) = co_located_refs(app, tag, phone, 1)
        done = EventLog()
        ref.write("w", on_written=lambda _r: done.append(1))
        scenario.put(tag, phone)
        assert done.wait_for_count(1)
        snapshot = phone.tx_scheduler.stats_snapshot()
        assert snapshot["tags"][tag.uid_hex]["starvation_ticks"] >= 1


class TestCustomPolicy:
    def test_user_defined_policy_object_is_honoured(
        self, scenario, activity
    ):
        """The policy API is open: a custom CrossTagPolicy instance
        plugs in through the same kwarg as the named ones."""

        class OneOpQuantum(CrossTagPolicy):
            name = "one-op"

            def __init__(self):
                self.visits = 0

            def begin_visit(self, tag, depth):
                self.visits += 1
                return 1.0

        policy = OneOpQuantum()
        phone = scenario.add_phone("custom-phone", tx_policy=policy)
        app = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("custom")
        (ref,) = co_located_refs(app, tag, phone, 1)
        done = EventLog()
        for index in range(4):
            ref.write(f"v{index}", coalesce=False, on_written=lambda _r: done.append(1))
        scenario.put(tag, phone)
        assert done.wait_for_count(4)
        assert phone.tx_scheduler.policy is policy
        assert policy.visits >= 4  # one-op budgets renew per op when alone
