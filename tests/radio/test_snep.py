"""Tests for the SNEP protocol layer (framing, fragmentation, codes)."""

import pytest

from repro.radio.snep import (
    REQ_GET,
    REQ_PUT,
    RES_BAD_REQUEST,
    RES_CONTINUE,
    RES_EXCESS_DATA,
    RES_NOT_FOUND,
    RES_NOT_IMPLEMENTED,
    RES_SUCCESS,
    RES_UNSUPPORTED_VERSION,
    SnepClient,
    SnepFrame,
    SnepProtocolError,
    SnepServer,
)


class TestFrameCodec:
    def test_roundtrip(self):
        frame = SnepFrame(code=REQ_PUT, information=b"payload")
        decoded = SnepFrame.from_bytes(frame.to_bytes())
        assert decoded.code == REQ_PUT
        assert decoded.information == b"payload"
        assert decoded.total_length == 7

    def test_header_layout(self):
        raw = SnepFrame(code=REQ_PUT, information=b"ab").to_bytes()
        assert raw[0] == 0x10  # version 1.0
        assert raw[1] == REQ_PUT
        assert int.from_bytes(raw[2:6], "big") == 2

    def test_announced_length_preserved(self):
        frame = SnepFrame(code=REQ_PUT, information=b"abc", announced_length=10)
        decoded = SnepFrame.from_bytes(frame.to_bytes())
        assert decoded.total_length == 10
        assert decoded.information == b"abc"

    def test_truncated_header_rejected(self):
        with pytest.raises(SnepProtocolError):
            SnepFrame.from_bytes(b"\x10\x02\x00")

    def test_overlong_information_rejected(self):
        raw = bytes([0x10, REQ_PUT]) + (1).to_bytes(4, "big") + b"too much"
        with pytest.raises(SnepProtocolError):
            SnepFrame.from_bytes(raw)


class TestServer:
    def make_server(self):
        received = []
        server = SnepServer(lambda sender, data: received.append((sender, data)))
        return server, received

    def test_single_fragment_put(self):
        server, received = self.make_server()
        request = SnepFrame(code=REQ_PUT, information=b"hello").to_bytes()
        response = SnepFrame.from_bytes(server.process("alice", request))
        assert response.code == RES_SUCCESS
        assert received == [("alice", b"hello")]
        assert server.puts_accepted == 1

    def test_fragmented_put_with_continue(self):
        server, received = self.make_server()
        data = b"0123456789"
        first = SnepFrame(
            code=REQ_PUT, information=data[:4], announced_length=len(data)
        ).to_bytes()
        response = SnepFrame.from_bytes(server.process("alice", first))
        assert response.code == RES_CONTINUE
        response = SnepFrame.from_bytes(server.process("alice", data[4:8]))
        assert response.code == RES_CONTINUE
        response = SnepFrame.from_bytes(server.process("alice", data[8:]))
        assert response.code == RES_SUCCESS
        assert received == [("alice", data)]

    def test_interleaved_senders_do_not_mix(self):
        server, received = self.make_server()
        a_first = SnepFrame(
            code=REQ_PUT, information=b"AA", announced_length=4
        ).to_bytes()
        b_first = SnepFrame(
            code=REQ_PUT, information=b"BB", announced_length=4
        ).to_bytes()
        server.process("alice", a_first)
        server.process("bob", b_first)
        server.process("alice", b"aa")
        server.process("bob", b"bb")
        assert sorted(received) == [("alice", b"AAaa"), ("bob", b"BBbb")]

    def test_excess_continuation_rejected(self):
        server, received = self.make_server()
        first = SnepFrame(
            code=REQ_PUT, information=b"ab", announced_length=3
        ).to_bytes()
        server.process("alice", first)
        response = SnepFrame.from_bytes(server.process("alice", b"cdEXTRA"))
        assert response.code == RES_EXCESS_DATA
        assert received == []

    def test_unsupported_version(self):
        server, _ = self.make_server()
        raw = bytes([0x20, REQ_PUT]) + (0).to_bytes(4, "big")
        response = SnepFrame.from_bytes(server.process("alice", raw))
        assert response.code == RES_UNSUPPORTED_VERSION

    def test_get_not_implemented_by_default(self):
        server, _ = self.make_server()
        request = SnepFrame(
            code=REQ_GET, information=(100).to_bytes(4, "big")
        ).to_bytes()
        response = SnepFrame.from_bytes(server.process("alice", request))
        assert response.code == RES_NOT_IMPLEMENTED

    def test_get_with_provider(self):
        server = SnepServer(
            on_put=lambda s, d: None,
            get_provider=lambda sender, req: b"answer" if req == b"q" else None,
        )
        request = SnepFrame(
            code=REQ_GET, information=(100).to_bytes(4, "big") + b"q"
        ).to_bytes()
        response = SnepFrame.from_bytes(server.process("alice", request))
        assert response.code == RES_SUCCESS
        assert response.information == b"answer"
        missing = SnepFrame(
            code=REQ_GET, information=(100).to_bytes(4, "big") + b"??"
        ).to_bytes()
        assert SnepFrame.from_bytes(server.process("alice", missing)).code == RES_NOT_FOUND

    def test_get_answer_over_acceptable_length(self):
        server = SnepServer(
            on_put=lambda s, d: None,
            get_provider=lambda sender, req: b"a very long answer",
        )
        request = SnepFrame(
            code=REQ_GET, information=(4).to_bytes(4, "big") + b"q"
        ).to_bytes()
        assert SnepFrame.from_bytes(server.process("alice", request)).code == RES_EXCESS_DATA

    def test_garbage_request_answers_bad_request(self):
        server, _ = self.make_server()
        response = SnepFrame.from_bytes(server.process("alice", b"\x10"))
        assert response.code == RES_BAD_REQUEST


class TestClient:
    def loopback(self, server: SnepServer, sender="client"):
        return lambda raw: server.process(sender, raw)

    def test_small_put_single_fragment(self):
        server = SnepServer(lambda s, d: None)
        client = SnepClient(self.loopback(server), miu=128)
        client.put(b"small")
        assert client.fragments_sent == 1

    def test_large_put_fragments(self):
        received = []
        server = SnepServer(lambda s, d: received.append(d))
        client = SnepClient(self.loopback(server), miu=16)
        payload = bytes(range(100))
        client.put(payload)
        assert received == [payload]
        assert client.fragments_sent > 1

    def test_put_rejection_raises(self):
        server = SnepServer(lambda s, d: None)
        client = SnepClient(
            lambda raw: SnepFrame(code=RES_NOT_IMPLEMENTED).to_bytes(), miu=64
        )
        with pytest.raises(SnepProtocolError):
            client.put(b"data")

    def test_get_roundtrip(self):
        server = SnepServer(
            on_put=lambda s, d: None, get_provider=lambda s, req: b"the value"
        )
        client = SnepClient(self.loopback(server), miu=64)
        assert client.get(b"request") == b"the value"

    def test_miu_must_exceed_header(self):
        with pytest.raises(SnepProtocolError):
            SnepClient(lambda raw: raw, miu=6)


class TestBeamOverSnep:
    def test_beam_fragments_large_messages(self, scenario):
        """A large beamed message visibly crosses the SNEP MIU."""
        from repro.concurrent import EventLog
        from repro.core import (
            Beamer,
            BeamReceivedListener,
            NFCActivity,
            NdefMessageToStringConverter,
            StringToNdefMessageConverter,
        )

        mime = "application/x-snep-test"
        sender_phone = scenario.add_phone("snep-sender")
        receiver_phone = scenario.add_phone("snep-receiver")

        received = EventLog()

        class Receiver(NFCActivity):
            def on_create(self):
                class Listener(BeamReceivedListener):
                    def on_beam_received(self, obj):
                        received.append(obj)

                Listener(self, mime, NdefMessageToStringConverter())

        class Sender(NFCActivity):
            def on_create(self):
                self.beamer = Beamer(self, StringToNdefMessageConverter(mime))

        scenario.start(receiver_phone, Receiver)
        sender = scenario.start(sender_phone, Sender)
        scenario.pair(sender_phone, receiver_phone)
        big = "x" * 1000  # far beyond the 128-byte MIU
        done = EventLog()
        sender.beamer.beam(big, on_success=lambda: done.append("ok"))
        assert done.wait_for_count(1, timeout=5)
        assert received.wait_for_count(1, timeout=5)
        assert received.snapshot() == [big]
        server = receiver_phone.port.snep_server
        assert server is not None
        assert server.frames_processed > 1  # fragmentation actually happened
