"""Unit tests for port operations: blocking I/O, tears, Beam delivery."""

import pytest

from repro.clock import ManualClock
from repro.errors import (
    BeamError,
    NotInFieldError,
    TagFormatError,
    TagLostError,
)
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.environment import RfidEnvironment
from repro.radio.link import FlakyThenGoodLink, ScriptedLink
from repro.radio.timing import NO_DELAY, TransferTiming
from repro.tags.factory import make_tag


def msg(payload: bytes = b"data") -> NdefMessage:
    return NdefMessage([mime_record("a/b", payload)])


@pytest.fixture
def env():
    return RfidEnvironment()


class TestReads:
    def test_read_requires_field(self, env):
        port = env.create_port("p")
        with pytest.raises(NotInFieldError):
            port.read_ndef(make_tag())

    def test_read_success(self, env):
        port = env.create_port("p")
        tag = make_tag(content=msg(b"hello"))
        env.move_tag_into_field(tag, port)
        assert port.read_ndef(tag) == msg(b"hello")

    def test_read_tear(self, env):
        port = env.create_port("p", link=ScriptedLink([False]))
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        with pytest.raises(TagLostError):
            port.read_ndef(tag)
        assert port.read_ndef(tag) is not None  # next attempt succeeds

    def test_read_unformatted_is_format_error(self, env):
        port = env.create_port("p")
        tag = make_tag(formatted=False)
        env.move_tag_into_field(tag, port)
        with pytest.raises(TagFormatError):
            port.read_ndef(tag)

    def test_read_counts_attempts(self, env):
        port = env.create_port("p")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        port.read_ndef(tag)
        port.read_ndef(tag)
        assert port.read_attempts == 2


class TestWrites:
    def test_write_roundtrip(self, env):
        port = env.create_port("p")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        port.write_ndef(tag, msg(b"written"))
        assert tag.read_ndef() == msg(b"written")

    def test_write_requires_field(self, env):
        port = env.create_port("p")
        with pytest.raises(NotInFieldError):
            port.write_ndef(make_tag(), msg())

    def test_write_tear_without_corruption(self, env):
        port = env.create_port("p", link=FlakyThenGoodLink(1))
        tag = make_tag(content=msg(b"original"))
        env.move_tag_into_field(tag, port)
        with pytest.raises(TagLostError):
            port.write_ndef(tag, msg(b"replacement"))
        assert tag.read_ndef() == msg(b"original")  # intact by default

    def test_write_tear_with_corruption(self, env):
        port = env.create_port("p", link=FlakyThenGoodLink(1))
        port.corrupt_on_tear = True
        tag = make_tag(content=msg(b"original data here"))
        env.move_tag_into_field(tag, port)
        with pytest.raises(TagLostError):
            port.write_ndef(tag, msg(b"replacement data"))
        with pytest.raises(TagFormatError):
            port.read_ndef(tag)  # torn TLV is unreadable
        # A successful rewrite heals the tag.
        port.write_ndef(tag, msg(b"healed"))
        assert port.read_ndef(tag) == msg(b"healed")

    def test_format_then_write(self, env):
        port = env.create_port("p")
        tag = make_tag(formatted=False)
        env.move_tag_into_field(tag, port)
        port.format_tag(tag)
        port.write_ndef(tag, msg(b"fresh"))
        assert tag.read_ndef() == msg(b"fresh")

    def test_make_read_only(self, env):
        port = env.create_port("p")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        port.make_read_only(tag)
        assert not tag.is_writable

    def test_format_and_lock_count_attempts(self, env):
        port = env.create_port("p")
        tag = make_tag(formatted=False)
        env.move_tag_into_field(tag, port)
        port.format_tag(tag)
        port.format_tag(tag)  # idempotent, still an attempt
        port.make_read_only(tag)
        assert port.format_attempts == 2
        assert port.lock_attempts == 1
        assert port.connects == 3

    def test_failed_attempts_still_count(self, env):
        port = env.create_port("p", link=ScriptedLink([False, False]))
        tag = make_tag(formatted=False)
        env.move_tag_into_field(tag, port)
        with pytest.raises(TagLostError):
            port.format_tag(tag)
        with pytest.raises(TagLostError):
            port.make_read_only(tag)
        assert port.format_attempts == 1
        assert port.lock_attempts == 1

    def test_session_operations_share_the_attempt_counters(self, env):
        port = env.create_port("p")
        tag = make_tag(formatted=False)
        env.move_tag_into_field(tag, port)
        session = port.open_session(tag)
        try:
            session.format_tag(tag)
            session.write_ndef(tag, msg(b"batched"))
            session.make_read_only(tag)
        finally:
            session.close()
        assert port.format_attempts == 1
        assert port.write_attempts == 1
        assert port.lock_attempts == 1
        assert port.connects == 1  # one connect served all three


class TestLatency:
    def test_timing_model_slows_operations(self):
        clock = ManualClock()
        env = RfidEnvironment(
            clock=clock, timing=TransferTiming(base_seconds=0.5, seconds_per_byte=0.0)
        )
        port = env.create_port("p")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        before = clock.now()
        port.read_ndef(tag)
        assert clock.now() - before == pytest.approx(0.5)

    def test_latency_scales_with_bytes(self):
        clock = ManualClock()
        env = RfidEnvironment(
            clock=clock, timing=TransferTiming(base_seconds=0.0, seconds_per_byte=0.01)
        )
        port = env.create_port("p")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        small = msg(b"x")
        large = msg(b"x" * 100)
        t0 = clock.now()
        port.write_ndef(tag, small)
        t1 = clock.now()
        port.write_ndef(tag, large)
        t2 = clock.now()
        assert (t2 - t1) > (t1 - t0)

    def test_no_delay_timing_is_instant(self):
        clock = ManualClock()
        env = RfidEnvironment(clock=clock, timing=NO_DELAY)
        port = env.create_port("p")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        port.read_ndef(tag)
        assert clock.now() == 0.0


class TestBeam:
    def test_beam_requires_peer(self, env):
        port = env.create_port("a")
        with pytest.raises(BeamError):
            port.beam(msg())

    def test_beam_delivers_to_peer_handler(self, env):
        a = env.create_port("a")
        b = env.create_port("b")
        received = []
        b.set_beam_handler(lambda sender, m: received.append((sender, m)))
        env.bring_together(a, b)
        delivered = a.beam(msg(b"ping"))
        assert delivered == ["b"]
        assert received == [("a", msg(b"ping"))]

    def test_beam_without_receiver_handler_fails(self, env):
        a = env.create_port("a")
        b = env.create_port("b")
        env.bring_together(a, b)
        with pytest.raises(BeamError):
            a.beam(msg())

    def test_beam_tear(self, env):
        a = env.create_port("a", link=ScriptedLink([False]))
        b = env.create_port("b")
        b.set_beam_handler(lambda sender, m: None)
        env.bring_together(a, b)
        with pytest.raises(TagLostError):
            a.beam(msg())

    def test_beam_reaches_all_peers(self, env):
        a = env.create_port("a")
        b = env.create_port("b")
        c = env.create_port("c")
        got = []
        b.set_beam_handler(lambda s, m: got.append("b"))
        c.set_beam_handler(lambda s, m: got.append("c"))
        env.bring_together(a, b)
        env.bring_together(a, c)
        assert sorted(a.beam(msg())) == ["b", "c"]
        assert sorted(got) == ["b", "c"]

    def test_set_link_swaps_model(self, env):
        port = env.create_port("p")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        port.set_link(ScriptedLink([False], default=False))
        with pytest.raises(TagLostError):
            port.read_ndef(tag)
