"""Tests for radio trace recording and replay."""

import pytest

from repro.clock import ManualClock
from repro.errors import RadioError
from repro.radio.environment import RfidEnvironment
from repro.radio.trace import RadioTracer, TraceReplayer, trace_from_json
from repro.tags.factory import make_tag


@pytest.fixture
def world():
    env = RfidEnvironment()
    alice = env.create_port("alice")
    bob = env.create_port("bob")
    tags = [make_tag() for _ in range(2)]
    return env, alice, bob, tags


class TestRecording:
    def test_records_tag_transitions(self, world):
        env, alice, _, tags = world
        tracer = RadioTracer(env)
        env.move_tag_into_field(tags[0], alice)
        env.remove_tag_from_field(tags[0], alice)
        kinds = [(e.kind, e.port, e.subject) for e in tracer.events()]
        assert kinds == [
            ("tag-entered", "alice", tags[0].uid_hex),
            ("tag-left", "alice", tags[0].uid_hex),
        ]

    def test_records_peer_transitions_on_both_sides(self, world):
        env, alice, bob, _ = world
        tracer = RadioTracer(env)
        env.bring_together(alice, bob)
        kinds = sorted((e.kind, e.port) for e in tracer.events())
        assert kinds == [("peer-entered", "alice"), ("peer-entered", "bob")]

    def test_timestamps_non_decreasing(self, world):
        env, alice, _, tags = world
        tracer = RadioTracer(env)
        for _ in range(5):
            env.move_tag_into_field(tags[0], alice)
            env.remove_tag_from_field(tags[0], alice)
        times = [e.at_seconds for e in tracer.events()]
        assert times == sorted(times)

    def test_stop_detaches(self, world):
        env, alice, _, tags = world
        tracer = RadioTracer(env)
        tracer.stop()
        env.move_tag_into_field(tags[0], alice)
        assert len(tracer) == 0

    def test_json_roundtrip(self, world):
        env, alice, bob, tags = world
        tracer = RadioTracer(env)
        env.move_tag_into_field(tags[1], alice)
        env.bring_together(alice, bob)
        events = trace_from_json(tracer.to_json())
        assert [(e.kind, e.port, e.subject) for e in events] == [
            (e.kind, e.port, e.subject) for e in tracer.events()
        ]

    def test_bad_json_rejected(self):
        with pytest.raises(RadioError):
            trace_from_json("{broken")
        with pytest.raises(RadioError):
            trace_from_json('{"version": 99, "events": []}')


class TestReplay:
    def record_session(self, world):
        env, alice, bob, tags = world
        tracer = RadioTracer(env)
        env.move_tag_into_field(tags[0], alice)
        env.bring_together(alice, bob)
        env.move_tag_into_field(tags[1], bob)
        env.remove_tag_from_field(tags[0], alice)
        return tracer.to_json(), tags

    def test_replay_reproduces_final_topology(self, world):
        trace_json, tags = self.record_session(world)
        fresh = RfidEnvironment()
        alice = fresh.create_port("alice")
        bob = fresh.create_port("bob")
        replayer = TraceReplayer(
            fresh, {tag.uid_hex: tag for tag in tags}, time_scale=0.0
        )
        applied = replayer.replay(trace_from_json(trace_json))
        assert applied >= 4
        assert not fresh.tag_in_field(tags[0], alice)
        assert fresh.tag_in_field(tags[1], bob)
        assert fresh.in_beam_range(alice, bob)

    def test_replay_drives_listeners_in_fresh_env(self, world):
        trace_json, tags = self.record_session(world)
        fresh = RfidEnvironment()
        alice = fresh.create_port("alice")
        fresh.create_port("bob")
        seen = []
        alice.add_field_listener(lambda event: seen.append(type(event).__name__))
        TraceReplayer(fresh, {tag.uid_hex: tag for tag in tags}).replay(
            trace_from_json(trace_json)
        )
        assert "TagEntered" in seen and "TagLeft" in seen

    def test_replay_with_unknown_tag_raises(self, world):
        trace_json, tags = self.record_session(world)
        fresh = RfidEnvironment()
        fresh.create_port("alice")
        fresh.create_port("bob")
        replayer = TraceReplayer(fresh, {}, time_scale=0.0)
        with pytest.raises(RadioError):
            replayer.replay(trace_from_json(trace_json))

    def test_replay_with_missing_port_raises(self, world):
        trace_json, tags = self.record_session(world)
        fresh = RfidEnvironment()
        fresh.create_port("alice")  # no bob
        replayer = TraceReplayer(
            fresh, {tag.uid_hex: tag for tag in tags}, time_scale=0.0
        )
        with pytest.raises(RadioError):
            replayer.replay(trace_from_json(trace_json))

    def test_replay_with_restored_tags(self, world, tmp_path):
        """A stored tag population + a trace = a reproducible session."""
        from repro.tags.store import TagStore

        trace_json, tags = self.record_session(world)
        store = TagStore(tmp_path)
        for index, tag in enumerate(tags):
            store.save(f"tag-{index}", tag)

        restored = [store.load(f"tag-{index}") for index in range(len(tags))]
        fresh = RfidEnvironment()
        fresh.create_port("alice")
        bob = fresh.create_port("bob")
        TraceReplayer(
            fresh, {tag.uid_hex: tag for tag in restored}, time_scale=0.0
        ).replay(trace_from_json(trace_json))
        assert fresh.tag_in_field(restored[1], bob)

    def test_negative_time_scale_rejected(self, world):
        env = RfidEnvironment()
        with pytest.raises(RadioError):
            TraceReplayer(env, {}, time_scale=-1)


class TestClockCorrectness:
    """Regression: the trace layer must read the *injected* clock.

    The original implementation stamped events with ``time.monotonic()``
    and replayed with ``time.sleep`` -- under a ManualClock the recorded
    spacing collapsed to microseconds and replay was nondeterministic.
    """

    def record_spaced_session(self):
        clock = ManualClock()
        env = RfidEnvironment(clock=clock)
        alice = env.create_port("alice")
        tag = make_tag()
        tracer = RadioTracer(env)
        env.move_tag_into_field(tag, alice)   # at t=0
        clock.advance(2.5)
        env.remove_tag_from_field(tag, alice)  # at t=2.5
        clock.advance(0.5)
        env.move_tag_into_field(tag, alice)   # at t=3.0
        return tracer.to_json(), tag

    def test_tracer_records_scripted_virtual_spacing(self):
        trace_json, _ = self.record_spaced_session()
        times = [e.at_seconds for e in trace_from_json(trace_json)]
        # Exact equality on purpose: virtual time has no jitter, so the
        # recorded timeline must be byte-for-byte the scripted one.
        assert times == [0.0, 2.5, 3.0]

    def test_tracer_ignores_wall_clock(self):
        import time as real_time

        clock = ManualClock()
        env = RfidEnvironment(clock=clock)
        alice = env.create_port("alice")
        tag = make_tag()
        tracer = RadioTracer(env)
        env.move_tag_into_field(tag, alice)
        real_time.sleep(0.05)  # wall time passes, virtual time does not
        env.remove_tag_from_field(tag, alice)
        times = [e.at_seconds for e in tracer.events()]
        assert times == [0.0, 0.0]

    def test_replay_drives_manual_clock_by_recorded_deltas(self):
        trace_json, tag = self.record_spaced_session()
        clock = ManualClock()
        fresh = RfidEnvironment(clock=clock)
        fresh.create_port("alice")
        replayer = TraceReplayer(fresh, {tag.uid_hex: tag})
        replayer.replay(trace_from_json(trace_json))
        assert clock.now() == 3.0
        assert [at for at, _ in replayer.delivered] == [0.0, 2.5, 3.0]

    def test_same_trace_replays_identically_twice(self):
        """Satellite: same trace => identical delivery, start to finish."""
        trace_json, tag = self.record_spaced_session()
        events = trace_from_json(trace_json)

        def run():
            clock = ManualClock()
            env = RfidEnvironment(clock=clock)
            port = env.create_port("alice")
            seen = []
            port.add_field_listener(
                lambda event: seen.append((clock.now(), type(event).__name__))
            )
            replayer = TraceReplayer(env, {tag.uid_hex: tag})
            replayer.replay(events)
            return seen, list(replayer.delivered), clock.now()

        first = run()
        second = run()
        assert first == second
        seen, delivered, final_now = first
        assert seen == [(0.0, "TagEntered"), (2.5, "TagLeft"), (3.0, "TagEntered")]
        assert [(at, e.kind) for at, e in delivered] == [
            (0.0, "tag-entered"),
            (2.5, "tag-left"),
            (3.0, "tag-entered"),
        ]
        assert final_now == 3.0

    def test_manual_clock_replay_ignores_time_scale(self):
        trace_json, tag = self.record_spaced_session()
        clock = ManualClock()
        fresh = RfidEnvironment(clock=clock)
        fresh.create_port("alice")
        # time_scale=1.0 would mean 3 real seconds against a SystemClock;
        # on a virtual timeline the clock is driven instead.
        replayer = TraceReplayer(fresh, {tag.uid_hex: tag}, time_scale=1.0)
        replayer.replay(trace_from_json(trace_json))
        assert clock.now() == 3.0

    def test_replay_wakes_manual_clock_deadline_waiters(self):
        """Advancing through events must fire listeners subscribed to the clock."""
        trace_json, tag = self.record_spaced_session()
        clock = ManualClock()
        fresh = RfidEnvironment(clock=clock)
        fresh.create_port("alice")
        ticks = []
        clock.add_listener(lambda: ticks.append(clock.now()))
        TraceReplayer(fresh, {tag.uid_hex: tag}).replay(trace_from_json(trace_json))
        assert ticks == [2.5, 3.0]
