"""Tests for the spatial radio environment."""

import pytest

from repro.errors import NotInFieldError, RadioError, TagLostError
from repro.radio.events import TagEntered, TagLeft
from repro.radio.geometry import Position, SpatialEnvironment
from repro.tags.factory import make_tag

from tests.conftest import text_message


@pytest.fixture
def env():
    return SpatialEnvironment(reliable_range=0.02, max_range=0.04, seed=1)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_zero_distance(self):
        assert Position(1, 1).distance_to(Position(1, 1)) == 0.0


class TestConstruction:
    def test_invalid_ranges_rejected(self):
        with pytest.raises(RadioError):
            SpatialEnvironment(reliable_range=0.05, max_range=0.04)
        with pytest.raises(RadioError):
            SpatialEnvironment(reliable_range=0.0, max_range=0.04)


class TestFieldMembership:
    def test_tag_within_range_enters_field(self, env):
        port = env.create_port("phone")
        tag = make_tag()
        env.place_phone(port, 0.0, 0.0)
        env.place_tag(tag, 0.01, 0.0)
        assert env.tag_in_field(tag, port)

    def test_tag_beyond_range_is_out(self, env):
        port = env.create_port("phone")
        tag = make_tag()
        env.place_phone(port, 0.0, 0.0)
        env.place_tag(tag, 0.05, 0.0)
        assert not env.tag_in_field(tag, port)

    def test_movement_fires_field_events(self, env):
        port = env.create_port("phone")
        events = []
        port.add_field_listener(events.append)
        tag = make_tag()
        env.place_phone(port, 0.0, 0.0)
        env.place_tag(tag, 0.01, 0.0)  # enters
        env.move_tag(tag, 0.1, 0.0)  # leaves
        env.move_tag(tag, 0.0, 0.01)  # re-enters
        kinds = [type(event) for event in events]
        assert kinds == [TagEntered, TagLeft, TagEntered]

    def test_phone_movement_refreshes_fields(self, env):
        port = env.create_port("phone")
        tag = make_tag()
        env.place_tag(tag, 0.0, 0.0)
        env.place_phone(port, 1.0, 0.0)
        assert not env.tag_in_field(tag, port)
        env.move_phone(port, 0.0, 0.01)
        assert env.tag_in_field(tag, port)

    def test_moving_unplaced_objects_rejected(self, env):
        port = env.create_port("phone")
        with pytest.raises(RadioError):
            env.move_phone(port, 0, 0)
        with pytest.raises(RadioError):
            env.move_tag(make_tag(), 0, 0)

    def test_distance_query(self, env):
        port = env.create_port("phone")
        tag = make_tag()
        assert env.distance(port, tag) is None
        env.place_phone(port, 0.0, 0.0)
        env.place_tag(tag, 0.03, 0.0)
        assert env.distance(port, tag) == pytest.approx(0.03)


class TestBeamProximity:
    def test_phones_within_range_pair(self, env):
        a = env.create_port("a")
        b = env.create_port("b")
        env.place_phone(a, 0.0, 0.0)
        env.place_phone(b, 0.03, 0.0)
        assert env.in_beam_range(a, b)
        env.move_phone(b, 1.0, 0.0)
        assert not env.in_beam_range(a, b)


class TestEdgeZone:
    def test_reliable_zone_never_tears(self, env):
        port = env.create_port("phone")
        tag = make_tag(content=text_message("close"))
        env.place_phone(port, 0.0, 0.0)
        env.place_tag(tag, 0.015, 0.0)
        for _ in range(50):
            assert port.read_ndef(tag) is not None

    def test_edge_zone_is_lossy(self, env):
        port = env.create_port("phone")
        tag = make_tag(content=text_message("far"))
        env.place_phone(port, 0.0, 0.0)
        env.place_tag(tag, 0.038, 0.0)  # 90% into the edge band
        failures = 0
        for _ in range(60):
            try:
                port.read_ndef(tag)
            except TagLostError:
                failures += 1
        assert failures > 10  # mostly failing out here

    def test_edge_zone_loss_grows_with_distance(self):
        def failure_rate(distance: float) -> float:
            env = SpatialEnvironment(
                reliable_range=0.02, max_range=0.04, seed=99
            )
            port = env.create_port("phone")
            tag = make_tag(content=text_message("x"))
            env.place_phone(port, 0.0, 0.0)
            env.place_tag(tag, distance, 0.0)
            failures = 0
            for _ in range(200):
                try:
                    port.read_ndef(tag)
                except TagLostError:
                    failures += 1
            return failures / 200

        near = failure_rate(0.025)
        far = failure_rate(0.038)
        assert near < far

    def test_out_of_range_is_not_in_field(self, env):
        port = env.create_port("phone")
        tag = make_tag()
        env.place_phone(port, 0.0, 0.0)
        env.place_tag(tag, 0.5, 0.0)
        with pytest.raises(NotInFieldError):
            port.read_ndef(tag)

    def test_unplaced_objects_behave_like_flat_env(self, env):
        """Tags moved with the explicit API skip the geometric attrition."""
        port = env.create_port("phone")
        tag = make_tag(content=text_message("flat"))
        env.move_tag_into_field(tag, port)
        for _ in range(20):
            assert port.read_ndef(tag) is not None


class TestIntegrationWithMiddleware:
    def test_reference_retries_through_edge_zone(self, env):
        """A queued MORENA write lands once the tag is brought close."""
        from repro.android.device import AndroidDevice
        from repro.concurrent import EventLog
        from tests.conftest import PlainNfcActivity, make_reference, text_tag

        phone = AndroidDevice("geo-phone", env)
        try:
            activity = phone.start_activity(PlainNfcActivity)
            tag = text_tag("start")
            env.place_phone(phone.port, 0.0, 0.0)
            env.place_tag(tag, 0.039, 0.0)  # barely in the field, very lossy
            reference = make_reference(activity, tag, phone)
            done = EventLog()
            reference.write(
                "landed", on_written=lambda r: done.append("ok"), timeout=30.0
            )
            # Bring the tag close; the retry loop finishes the write.
            env.move_tag(tag, 0.005, 0.0)
            assert done.wait_for_count(1, timeout=10)
            assert tag.read_ndef()[0].payload == b"landed"
        finally:
            phone.shutdown()
