"""Property/fuzz tests for the SNEP layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.snep import (
    RES_SUCCESS,
    SnepClient,
    SnepFrame,
    SnepServer,
)


@given(st.binary(max_size=64))
@settings(max_examples=200)
def test_server_always_answers_a_frame(raw):
    """Whatever bytes arrive, the server answers a well-formed frame."""
    server = SnepServer(lambda sender, data: None)
    response = server.process("fuzzer", raw)
    decoded = SnepFrame.from_bytes(response)  # must parse
    assert 0 <= decoded.code <= 0xFF


@given(st.binary(min_size=0, max_size=2000), st.integers(min_value=7, max_value=200))
@settings(max_examples=100)
def test_put_roundtrip_any_payload_any_miu(payload, miu):
    """Every payload survives fragmentation at every legal MIU."""
    received = []
    server = SnepServer(lambda sender, data: received.append(data))
    client = SnepClient(lambda raw: server.process("client", raw), miu=miu)
    client.put(payload)
    assert received == [payload]


@given(st.binary(min_size=1, max_size=500))
@settings(max_examples=50)
def test_fragment_count_matches_miu_arithmetic(payload):
    miu = 32
    server = SnepServer(lambda sender, data: None)
    client = SnepClient(lambda raw: server.process("client", raw), miu=miu)
    client.put(payload)
    first_chunk = miu - 6
    remaining = max(0, len(payload) - first_chunk)
    expected = 1 + (remaining + miu - 1) // miu
    assert client.fragments_sent == expected


@given(st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=5))
@settings(max_examples=50)
def test_sequential_puts_arrive_in_order(payloads):
    received = []
    server = SnepServer(lambda sender, data: received.append(data))
    client = SnepClient(lambda raw: server.process("client", raw), miu=48)
    for payload in payloads:
        client.put(payload)
    assert received == payloads
