"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_scenarios_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "unknown"])


class TestFig2:
    def test_prints_both_panels(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 (left)" in out
        assert "Figure 2 (right)" in out
        assert "concurrency" in out


class TestDemos:
    def test_wifi_demo_succeeds(self, capsys):
        assert main(["demo", "wifi"]) == 0
        out = capsys.readouterr().out
        assert "guest connected to: LobbyWifi" in out

    def test_beam_demo_succeeds(self, capsys):
        assert main(["demo", "beam"]) == 0
        out = capsys.readouterr().out
        assert "bob received: alice: hello from the command line" in out

    def test_handover_demo_succeeds(self, capsys):
        assert main(["demo", "handover"]) == 0
        out = capsys.readouterr().out
        assert "sharer offered ssid='HomeNet'" in out


class TestTagDump:
    def test_default_dump(self, capsys):
        assert main(["tagdump"]) == 0
        out = capsys.readouterr().out
        assert "NTAG213" in out
        assert "0000" in out

    def test_custom_type_and_text(self, capsys):
        assert main(["tagdump", "--type", "NTAG216", "--text", "xyzzy"]) == 0
        out = capsys.readouterr().out
        assert "NTAG216" in out
        # The record's type string lands whole inside one 16-byte dump row.
        assert "text/plain" in out

    def test_unknown_type_fails_cleanly(self):
        from repro.errors import TagError

        with pytest.raises(TagError):
            main(["tagdump", "--type", "NOPE"])


class TestFuzz:
    def test_fuzz_smoke_run_passes(self, capsys):
        assert main(["fuzz", "--seed", "7", "--iterations", "50"]) == 0
        out = capsys.readouterr().out
        assert "50 inputs (seed 7)" in out
        assert "0 CRASH" in out

    def test_fuzz_replays_committed_corpus(self, capsys):
        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "1",
                    "--iterations",
                    "10",
                    "--corpus",
                    "tests/ndef/corpus",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "committed inputs, 0 crashes" in out

    def test_fuzz_empty_corpus_dir_reported(self, capsys, tmp_path):
        assert main(["fuzz", "--iterations", "5", "--corpus", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no .hex files" in out

    def test_fuzz_exits_nonzero_and_saves_on_crash(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.harness.fuzz import load_corpus_dir
        from repro.ndef import message as message_module

        def explode(data):
            raise IndexError("injected decoder bug")

        monkeypatch.setattr(message_module.NdefMessage, "from_bytes", explode)
        assert (
            main(
                [
                    "fuzz",
                    "--iterations",
                    "3",
                    "--save-crashes",
                    str(tmp_path),
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "IndexError" in err
        saved = load_corpus_dir(tmp_path)
        assert saved  # crash inputs persisted for triage

    def test_fuzz_verbose_prints_mutation_counts(self, capsys):
        assert main(["fuzz", "--seed", "3", "--iterations", "20", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert any(
            line.strip().startswith(("truncate", "flip-bits", "inflate-length",
                                     "poison-tail", "duplicate", "splice",
                                     "chunk-flags", "clear-short-record",
                                     "reserved-tnf", "unchanged-tnf"))
            for line in out.splitlines()
        )


class TestHelp:
    def test_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("fig2", "demo", "tagdump", "lint", "fuzz", "gateway"):
            assert command in out


class TestGateway:
    def test_gateway_smoke_run(self, capsys):
        assert (
            main(
                [
                    "gateway",
                    "--devices", "8",
                    "--tags", "40",
                    "--shards", "2",
                    "--seed", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet: 8 devices" in out
        assert "ingested=" in out
        assert "busiest stations" in out
        assert "station-" in out

    def test_gateway_runs_on_asyncio_backend(self, capsys):
        assert (
            main(
                [
                    "gateway",
                    "--devices", "4",
                    "--tags", "20",
                    "--backend", "asyncio",
                    "--seed", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ingested=" in out

    def test_gateway_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gateway", "--backend", "curio"])
