"""Unit tests for the concurrency helpers."""

import threading

import pytest

from repro.concurrent import (
    AtomicCounter,
    CountDownLatch,
    EventLog,
    ResultBox,
    wait_until,
)


class TestCountDownLatch:
    def test_opens_after_count(self):
        latch = CountDownLatch(2)
        assert not latch.await_(timeout=0.01)
        latch.count_down()
        latch.count_down()
        assert latch.await_(timeout=0.01)
        assert latch.count == 0

    def test_extra_count_downs_ignored(self):
        latch = CountDownLatch(1)
        latch.count_down()
        latch.count_down()
        assert latch.count == 0

    def test_zero_latch_is_open(self):
        assert CountDownLatch(0).await_(timeout=0.01)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountDownLatch(-1)

    def test_cross_thread(self):
        latch = CountDownLatch(1)
        threading.Thread(target=latch.count_down).start()
        assert latch.await_(timeout=2.0)


class TestResultBox:
    def test_put_get(self):
        box = ResultBox()
        box.put(42)
        assert box.get(timeout=0.01) == 42
        assert box.is_set()

    def test_double_put_rejected(self):
        box = ResultBox()
        box.put(1)
        with pytest.raises(RuntimeError):
            box.put(2)

    def test_get_timeout(self):
        with pytest.raises(TimeoutError):
            ResultBox().get(timeout=0.01)

    def test_cross_thread_handoff(self):
        box = ResultBox()
        threading.Thread(target=lambda: box.put("payload")).start()
        assert box.get(timeout=2.0) == "payload"


class TestEventLog:
    def test_append_and_snapshot(self):
        log = EventLog()
        log.append(1)
        log.append(2)
        assert log.snapshot() == [1, 2]
        assert len(log) == 2

    def test_snapshot_is_a_copy(self):
        log = EventLog()
        log.append(1)
        snap = log.snapshot()
        snap.append(2)
        assert len(log) == 1

    def test_wait_for_count(self):
        log = EventLog()

        def producer():
            for i in range(3):
                log.append(i)

        threading.Thread(target=producer).start()
        assert log.wait_for_count(3, timeout=2.0)

    def test_wait_for_predicate(self):
        log = EventLog()
        threading.Thread(target=lambda: log.append("target")).start()
        assert log.wait_for(lambda events: "target" in events, timeout=2.0)

    def test_wait_timeout(self):
        assert not EventLog().wait_for_count(1, timeout=0.01)

    def test_clear(self):
        log = EventLog()
        log.append(1)
        log.clear()
        assert len(log) == 0


class TestWaitUntil:
    def test_immediate_truth(self):
        assert wait_until(lambda: True, timeout=0.01)

    def test_eventual_truth(self):
        state = {"ready": False}
        threading.Timer(0.03, lambda: state.update(ready=True)).start()
        assert wait_until(lambda: state["ready"], timeout=2.0)

    def test_timeout(self):
        assert not wait_until(lambda: False, timeout=0.02)


class TestAtomicCounter:
    def test_increment(self):
        counter = AtomicCounter()
        assert counter.increment() == 1
        assert counter.increment() == 2
        assert counter.value == 2

    def test_concurrent_increments(self):
        counter = AtomicCounter()
        threads = [
            threading.Thread(
                target=lambda: [counter.increment() for _ in range(100)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 800
