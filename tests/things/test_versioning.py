"""Tests for thing schema versioning and migration."""

import json

import pytest

from repro.concurrent import EventLog
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.factory import make_tag
from repro.things.activity import ThingActivity, thing_mime_type
from repro.things.thing import Thing


class ProfileV2(Thing):
    """Version 2 renamed ``name`` to ``full_name`` and added ``country``."""

    SCHEMA_VERSION = 2

    full_name: str
    country: str

    def __init__(self, activity, full_name="", country="BE"):
        super().__init__(activity)
        self.full_name = full_name
        self.country = country


class ProfileApp(ThingActivity):
    THING_CLASS = ProfileV2

    def on_create(self):
        self.things = EventLog()
        self.migrations = EventLog()
        self.empties = EventLog()

    def when_discovered(self, thing):
        self.things.append(thing)

    def when_discovered_empty(self, empty):
        self.empties.append(empty)

    def migrate_thing_data(self, data, from_version):
        self.migrations.append(from_version)
        if from_version < 2:
            data = dict(data)
            data["full_name"] = data.pop("name", "")
            data.setdefault("country", "BE")
        return data


MIME = thing_mime_type(ProfileV2)


def v1_tag(name: str):
    """A tag written by the (hypothetical) version 1 application."""
    payload = json.dumps({"name": name}).encode()
    return make_tag(content=NdefMessage([mime_record(MIME, payload)]))


def v2_tag(full_name: str, country: str):
    payload = json.dumps(
        {"full_name": full_name, "country": country, "_schema": 2}
    ).encode()
    return make_tag(content=NdefMessage([mime_record(MIME, payload)]))


@pytest.fixture
def app(scenario, phone):
    return scenario.start(phone, ProfileApp)


class TestMigration:
    def test_v1_tag_migrates_on_discovery(self, scenario, phone, app):
        scenario.put(v1_tag("Ada Lovelace"), phone)
        assert app.things.wait_for_count(1)
        thing = app.things.snapshot()[0]
        assert thing.full_name == "Ada Lovelace"
        assert thing.country == "BE"
        assert app.migrations.snapshot() == [1]

    def test_v2_tag_reads_without_migration(self, scenario, phone, app):
        scenario.put(v2_tag("Grace Hopper", "US"), phone)
        assert app.things.wait_for_count(1)
        assert app.things.snapshot()[0].country == "US"
        assert len(app.migrations) == 0

    def test_future_version_disregarded(self, scenario, phone, app):
        payload = json.dumps({"full_name": "x", "_schema": 99}).encode()
        tag = make_tag(content=NdefMessage([mime_record(MIME, payload)]))
        scenario.put(tag, phone)
        assert phone.sync()
        assert len(app.things) == 0  # unconvertible -> disregarded

    def test_saves_stamp_current_version(self, scenario, phone, app):
        tag = make_tag()
        scenario.put(tag, phone)
        assert app.empties.wait_for_count(1)
        empty = app.empties.snapshot()[0]
        saved = EventLog()
        phone.main_looper.post(
            lambda: empty.initialize(
                ProfileV2(app, "Katherine Johnson", "US"),
                on_saved=lambda t: saved.append(t),
            )
        )
        assert saved.wait_for_count(1)
        stored = json.loads(tag.read_ndef()[0].payload)
        assert stored["_schema"] == 2
        assert stored["full_name"] == "Katherine Johnson"

    def test_migrated_thing_can_be_saved_forward(self, scenario, phone, app):
        """Reading a v1 tag and saving writes it back as v2."""
        tag = v1_tag("Old Format")
        scenario.put(tag, phone)
        assert app.things.wait_for_count(1)
        thing = app.things.snapshot()[0]
        saved = EventLog()
        phone.main_looper.post(
            lambda: thing.save_async(on_saved=lambda t: saved.append(t))
        )
        assert saved.wait_for_count(1)
        stored = json.loads(tag.read_ndef()[0].payload)
        assert stored["_schema"] == 2
        assert "name" not in stored
        assert stored["full_name"] == "Old Format"


class TestDefaultVersioning:
    def test_version_one_things_carry_no_stamp(self, scenario, phone):
        """Unversioned thing classes keep the paper's plain wire format."""

        class Plain(Thing):
            value: str

            def __init__(self, activity, value=""):
                super().__init__(activity)
                self.value = value

        class PlainApp(ThingActivity):
            THING_CLASS = Plain

            def on_create(self):
                self.empties = EventLog()

            def when_discovered_empty(self, empty):
                self.empties.append(empty)

        app = scenario.start(phone, PlainApp)
        tag = make_tag()
        scenario.put(tag, phone)
        assert app.empties.wait_for_count(1)
        saved = EventLog()
        empty = app.empties.snapshot()[0]
        phone.main_looper.post(
            lambda: empty.initialize(
                Plain(app, "x"), on_saved=lambda t: saved.append(t)
            )
        )
        assert saved.wait_for_count(1)
        stored = json.loads(tag.read_ndef()[0].payload)
        assert "_schema" not in stored
