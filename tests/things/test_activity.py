"""Tests for ThingActivity: discovery dispatch, broadcast, configuration."""

import pytest

from repro.concurrent import EventLog
from repro.errors import ThingError
from repro.gson import Gson
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.factory import make_tag
from repro.things.activity import ThingActivity, thing_mime_type
from repro.things.thing import Thing


class Note(Thing):
    text: str

    def __init__(self, activity, text=""):
        super().__init__(activity)
        self.text = text


class NoteActivity(ThingActivity):
    THING_CLASS = Note

    def on_create(self):
        self.things = EventLog()
        self.empties = EventLog()

    def when_discovered(self, thing):
        self.things.append(thing)

    def when_discovered_empty(self, empty):
        self.empties.append(empty)


def note_tag(text):
    payload = f'{{"text": "{text}"}}'.encode()
    return make_tag(
        content=NdefMessage([mime_record(thing_mime_type(Note), payload)])
    )


@pytest.fixture
def app(scenario, phone):
    return scenario.start(phone, NoteActivity)


class TestConfiguration:
    def test_thing_class_must_be_set(self, scenario, phone):
        class Broken(ThingActivity):
            pass

        with pytest.raises(ThingError):
            phone.start_activity(Broken)

    def test_thing_class_must_subclass_thing(self, scenario, phone):
        class Broken(ThingActivity):
            THING_CLASS = str

        with pytest.raises(ThingError):
            phone.start_activity(Broken)

    def test_mime_type_property(self, app):
        assert app.mime_type == "application/vnd.morena.note"

    def test_custom_gson_hook(self, scenario, phone):
        markers = []

        class CustomGsonActivity(NoteActivity):
            def make_gson(self):
                markers.append("called")
                return Gson()

        scenario.start(phone, CustomGsonActivity)
        assert markers == ["called"]


class TestDiscovery:
    def test_tag_with_thing_triggers_when_discovered(self, scenario, phone, app):
        scenario.put(note_tag("hello"), phone)
        assert app.things.wait_for_count(1)
        thing = app.things.snapshot()[0]
        assert isinstance(thing, Note)
        assert thing.text == "hello"
        assert thing.is_bound

    def test_discovered_thing_bound_to_unique_reference(self, scenario, phone, app):
        tag = note_tag("x")
        scenario.put(tag, phone)
        scenario.take(tag, phone)
        scenario.put(tag, phone)
        assert app.things.wait_for_count(2)
        first, second = app.things.snapshot()
        assert first.reference is second.reference

    def test_empty_tag_triggers_when_discovered_empty(self, scenario, phone, app):
        scenario.put(make_tag(), phone)
        assert app.empties.wait_for_count(1)
        assert app.empties.snapshot()[0].is_formatted

    def test_unformatted_tag_triggers_empty_too(self, scenario, phone, app):
        scenario.put(make_tag(formatted=False), phone)
        assert app.empties.wait_for_count(1)
        assert not app.empties.snapshot()[0].is_formatted

    def test_foreign_thing_type_disregarded(self, scenario, phone, app):
        payload = b'{"other": 1}'
        tag = make_tag(
            content=NdefMessage([mime_record("application/vnd.morena.other", payload)])
        )
        scenario.put(tag, phone)
        assert phone.sync()
        assert len(app.things) == 0
        # It is not empty either, so no empty callback.
        assert len(app.empties) == 0

    def test_check_condition_gates_discovery(self, scenario, phone):
        class Picky(NoteActivity):
            def check_condition(self, thing):
                return thing.text == "magic"

        app = scenario.start(phone, Picky)
        scenario.put(note_tag("mundane"), phone)
        assert phone.sync()
        assert len(app.things) == 0
        scenario.put(note_tag("magic"), phone)
        assert app.things.wait_for_count(1)


class TestBroadcast:
    def test_broadcast_reaches_peer_thing_activity(self, scenario, phone, app):
        other = scenario.add_phone("peer")
        peer_app = scenario.start(other, NoteActivity)
        note = Note(app, "beamed note")
        done = EventLog()
        note.broadcast(on_success=lambda t: done.append(t))
        scenario.pair(phone, other)
        assert done.wait_for_count(1)
        assert peer_app.things.wait_for_count(1)
        received = peer_app.things.snapshot()[0]
        assert received.text == "beamed note"
        assert not received.is_bound  # paper 2.5: beamed things are unbound

    def test_broadcast_failure_listener_receives_thing(self, scenario, app):
        note = Note(app, "undeliverable")
        failures = EventLog()
        note.broadcast(on_failed=lambda t: failures.append(t), timeout=0.15)
        assert failures.wait_for_count(1, timeout=3)
        assert failures.snapshot() == [note]

    def test_received_thing_can_be_initialized_onto_tag(self, scenario, phone, app):
        """Paper 2.5: beamed things can later be bound to empty tags."""
        other = scenario.add_phone("peer2")
        peer_app = scenario.start(other, NoteActivity)
        Note(app, "travelling").broadcast()
        scenario.pair(phone, other)
        assert peer_app.things.wait_for_count(1)
        received = peer_app.things.snapshot()[0]

        tag = make_tag()
        scenario.put(tag, other)
        assert peer_app.empties.wait_for_count(1)
        empty = peer_app.empties.snapshot()[0]
        saved = EventLog()
        other.main_looper.post(
            lambda: empty.initialize(received, on_saved=lambda t: saved.append(t))
        )
        assert saved.wait_for_count(1)
        assert received.is_bound
        assert b"travelling" in tag.read_ndef()[0].payload
