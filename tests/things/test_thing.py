"""Unit tests for the Thing base class: binding, saving, serialization."""

import pytest

from repro.concurrent import EventLog
from repro.errors import ThingError
from repro.things.thing import Thing
from repro.things.activity import ThingActivity, thing_mime_type
from repro.tags.factory import make_tag


class Badge(Thing):
    __transient__ = ("scratch",)

    owner: str
    level: int

    def __init__(self, activity, owner="nobody", level=1):
        super().__init__(activity)
        self.owner = owner
        self.level = level
        self.scratch = "not persisted"


class BadgeActivity(ThingActivity):
    THING_CLASS = Badge

    def on_create(self):
        self.discovered = EventLog()
        self.empties = EventLog()

    def when_discovered(self, thing):
        self.discovered.append(thing)

    def when_discovered_empty(self, empty):
        self.empties.append(empty)


@pytest.fixture
def app(scenario):
    phone = scenario.add_phone("thing-phone")
    return scenario.start(phone, BadgeActivity)


@pytest.fixture
def bound_badge(scenario, app):
    """A badge initialized onto a tag and rediscovered."""
    phone = scenario.phones["thing-phone"]
    tag = make_tag()
    saved = EventLog()
    scenario.put(tag, phone)
    assert app.empties.wait_for_count(1)
    empty = app.empties.snapshot()[0]
    badge = Badge(app, owner="ada", level=3)
    empty.initialize(badge, on_saved=lambda t: saved.append(t))
    assert saved.wait_for_count(1)
    return badge, tag


class TestBinding:
    def test_fresh_thing_is_unbound(self, app):
        badge = Badge(app)
        assert not badge.is_bound
        assert badge.reference is None
        assert badge.tag_uid is None

    def test_initialized_thing_is_bound(self, bound_badge):
        badge, tag = bound_badge
        assert badge.is_bound
        assert badge.tag_uid == tag.uid

    def test_save_unbound_raises(self, app):
        with pytest.raises(ThingError):
            Badge(app).save_async()

    def test_refresh_unbound_raises(self, app):
        with pytest.raises(ThingError):
            Badge(app).refresh_async()


class TestSerializationRules:
    def test_public_fields_only(self, app):
        badge = Badge(app, owner="bob", level=2)
        assert badge.public_fields() == {"owner": "bob", "level": 2}

    def test_transient_excluded_from_tag(self, scenario, app, bound_badge):
        badge, tag = bound_badge
        stored = tag.read_ndef()[0].payload.decode()
        assert "scratch" not in stored
        assert "ada" in stored

    def test_internal_attributes_never_stored(self, bound_badge):
        badge, tag = bound_badge
        stored = tag.read_ndef()[0].payload.decode()
        assert "_reference" not in stored and "_activity" not in stored

    def test_mime_type_derived_from_class(self):
        assert thing_mime_type(Badge) == "application/vnd.morena.badge"

    def test_repr_shows_fields_and_binding(self, app, bound_badge):
        badge, _ = bound_badge
        text = repr(badge)
        assert "owner='ada'" in text
        assert "unbound" not in text
        assert "unbound" in repr(Badge(app))


class TestSaveAsync:
    def test_save_persists_modifications(self, scenario, app, bound_badge):
        badge, tag = bound_badge
        badge.level = 99
        saved = EventLog()
        badge.save_async(on_saved=lambda t: saved.append(t))
        assert saved.wait_for_count(1)
        assert saved.snapshot() == [badge]
        assert '"level": 99' in tag.read_ndef()[0].payload.decode()

    def test_save_failure_listener_on_timeout(self, scenario, app, bound_badge):
        badge, tag = bound_badge
        phone = scenario.phones["thing-phone"]
        scenario.take(tag, phone)
        failures = EventLog()
        badge.save_async(on_failed=lambda: failures.append("failed"), timeout=0.15)
        assert failures.wait_for_count(1, timeout=3)

    def test_save_success_listener_gets_thing_argument(self, app, bound_badge):
        badge, _ = bound_badge
        got = EventLog()
        badge.save_async(on_saved=got.append)
        assert got.wait_for_count(1)
        assert got.snapshot()[0] is badge


class TestRefreshAsync:
    def test_refresh_pulls_external_changes(self, scenario, app, bound_badge):
        badge, tag = bound_badge
        # Another device rewrites the tag behind our back.
        from repro.gson import Gson
        from repro.ndef.message import NdefMessage
        from repro.ndef.mime import mime_record

        foreign = Badge(app, owner="eve", level=42)
        payload = Gson().to_json(foreign).encode()
        tag.write_ndef(
            NdefMessage([mime_record(thing_mime_type(Badge), payload)])
        )
        refreshed = EventLog()
        badge.refresh_async(on_refreshed=lambda t: refreshed.append(t))
        assert refreshed.wait_for_count(1)
        assert badge.owner == "eve"
        assert badge.level == 42

    def test_refresh_failure_on_timeout(self, scenario, app, bound_badge):
        badge, tag = bound_badge
        phone = scenario.phones["thing-phone"]
        scenario.take(tag, phone)
        failures = EventLog()
        badge.refresh_async(on_failed=lambda: failures.append("x"), timeout=0.15)
        assert failures.wait_for_count(1, timeout=3)
