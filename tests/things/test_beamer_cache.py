"""ThingBeamer's payload cache: hit/miss behavior and delivery."""

import pytest

from repro.concurrent import EventLog
from repro.things.beamer import ThingBeamer
from repro.things.thing import Thing
from repro.things.activity import ThingActivity


class Reading(Thing):
    sensor: str
    value: int

    def __init__(self, activity, sensor="temp", value=0):
        super().__init__(activity)
        self.sensor = sensor
        self.value = value


class ReadingActivity(ThingActivity):
    THING_CLASS = Reading

    def on_create(self):
        self.received = EventLog()

    def when_discovered(self, thing):
        self.received.append((thing.sensor, thing.value))


@pytest.fixture
def apps(scenario):
    sender_phone = scenario.add_phone("beam-sender")
    receiver_phone = scenario.add_phone("beam-receiver")
    sender = scenario.start(sender_phone, ReadingActivity)
    receiver = scenario.start(receiver_phone, ReadingActivity)
    scenario.pair(sender_phone, receiver_phone)
    return sender, receiver


def test_thing_beamer_is_the_default(apps):
    sender, _receiver = apps
    assert isinstance(sender.thing_beamer, ThingBeamer)


def test_rebroadcast_of_unchanged_thing_hits(apps):
    sender, receiver = apps
    reading = Reading(sender, sensor="temp", value=21)
    done = EventLog()
    for count in range(1, 4):
        reading.broadcast(
            on_success=lambda t: done.append("ok"),
            on_failed=lambda t: done.append("failed"),
        )
        assert done.wait_for_count(count, timeout=5)
    assert done.snapshot() == ["ok"] * 3
    beamer = sender.thing_beamer
    assert beamer.payload_misses == 1
    assert beamer.payload_hits == 2
    assert receiver.received.wait_for_count(3)


def test_mutation_misses_then_caches_again(apps):
    sender, receiver = apps
    reading = Reading(sender, sensor="temp", value=1)
    done = EventLog()

    def send():
        reading.broadcast(
            on_success=lambda t: done.append("ok"),
            on_failed=lambda t: done.append("failed"),
        )

    send()
    reading.value = 2
    send()
    send()  # unchanged again -> hit
    assert done.wait_for_count(3, timeout=5)
    beamer = sender.thing_beamer
    assert beamer.payload_misses == 2
    assert beamer.payload_hits == 1
    assert receiver.received.wait_for_count(3)
    assert set(receiver.received.snapshot()) == {("temp", 1), ("temp", 2)}


def test_mutate_then_restore_still_hits(apps):
    sender, _receiver = apps
    reading = Reading(sender, sensor="temp", value=7)
    done = EventLog()
    reading.broadcast(on_success=lambda t: done.append("ok"))
    reading.value = 8
    reading.value = 7  # back to the cached text
    reading.broadcast(on_success=lambda t: done.append("ok"))
    assert done.wait_for_count(2, timeout=5)
    assert sender.thing_beamer.payload_hits == 1


def test_invalidate_clears_the_cache(apps):
    sender, _receiver = apps
    reading = Reading(sender)
    done = EventLog()
    reading.broadcast(on_success=lambda t: done.append("ok"))
    sender.thing_beamer.invalidate_payload_cache()
    reading.broadcast(on_success=lambda t: done.append("ok"))
    assert done.wait_for_count(2, timeout=5)
    assert sender.thing_beamer.payload_misses == 2
    assert sender.thing_beamer.payload_hits == 0


def test_cached_message_is_shared_not_recoded(apps):
    sender, _receiver = apps
    reading = Reading(sender, sensor="a", value=1)
    first = sender.thing_beamer._convert_payload(reading)
    second = sender.thing_beamer._convert_payload(reading)
    assert second is first
    assert first.to_bytes() is first.to_bytes()  # memoized encoding


def test_plain_converter_degrades_gracefully(scenario):
    from repro.core.converters import StringToNdefMessageConverter

    phone = scenario.add_phone("plain-beamer")
    app = scenario.start(phone, ReadingActivity)
    beamer = ThingBeamer(
        app, StringToNdefMessageConverter("application/x-plain")
    )
    try:
        first = beamer._convert_payload("hello")
        second = beamer._convert_payload("hello")
        assert first is not second  # no to_text() -> no cache
        assert beamer.payload_hits == 0 and beamer.payload_misses == 0
    finally:
        beamer.stop()
