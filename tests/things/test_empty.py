"""Tests for EmptyRecord.initialize: binding things to blank tags."""

import pytest

from repro.concurrent import EventLog
from repro.errors import ThingError
from repro.tags.factory import make_tag
from repro.things.thing import Thing
from repro.things.activity import ThingActivity


class Token(Thing):
    value: str

    def __init__(self, activity, value="v"):
        super().__init__(activity)
        self.value = value


class TokenActivity(ThingActivity):
    THING_CLASS = Token

    def on_create(self):
        self.empties = EventLog()
        self.things = EventLog()

    def when_discovered_empty(self, empty):
        self.empties.append(empty)

    def when_discovered(self, thing):
        self.things.append(thing)


@pytest.fixture
def app(scenario, phone):
    return scenario.start(phone, TokenActivity)


def discover_empty(scenario, phone, app, tag):
    scenario.put(tag, phone)
    count = len(app.empties)
    assert app.empties.wait_for_count(count + 1)
    return app.empties.snapshot()[-1]


class TestInitialize:
    def test_initialize_writes_and_binds(self, scenario, phone, app):
        tag = make_tag()
        empty = discover_empty(scenario, phone, app, tag)
        token = Token(app, "minted")
        saved = EventLog()
        empty.initialize(token, on_saved=lambda t: saved.append(t))
        assert saved.wait_for_count(1)
        assert token.is_bound
        assert token.tag_uid == tag.uid
        assert b"minted" in tag.read_ndef()[0].payload

    def test_initialize_formats_blank_tags_first(self, scenario, phone, app):
        tag = make_tag(formatted=False)
        empty = discover_empty(scenario, phone, app, tag)
        assert not empty.is_formatted
        token = Token(app, "on-blank")
        saved = EventLog()
        empty.initialize(token, on_saved=lambda t: saved.append(t))
        assert saved.wait_for_count(1)
        assert tag.is_ndef_formatted
        assert b"on-blank" in tag.read_ndef()[0].payload

    def test_initialized_tag_rediscovers_as_thing(self, scenario, phone, app):
        tag = make_tag()
        empty = discover_empty(scenario, phone, app, tag)
        saved = EventLog()
        empty.initialize(Token(app, "cycle"), on_saved=lambda t: saved.append(t))
        assert saved.wait_for_count(1)
        scenario.take(tag, phone)
        scenario.put(tag, phone)
        assert app.things.wait_for_count(1)
        assert app.things.snapshot()[0].value == "cycle"

    def test_initialize_failure_leaves_thing_unbound(self, scenario, phone, app):
        tag = make_tag()
        empty = discover_empty(scenario, phone, app, tag)
        scenario.take(tag, phone)
        token = Token(app, "doomed")
        failures = EventLog()
        empty.initialize(
            token, on_save_failed=lambda: failures.append("f"), timeout=0.15
        )
        assert failures.wait_for_count(1, timeout=3)
        assert not token.is_bound

    def test_initialize_bound_thing_rejected(self, scenario, phone, app):
        tag = make_tag()
        empty = discover_empty(scenario, phone, app, tag)
        token = Token(app)
        saved = EventLog()
        empty.initialize(token, on_saved=lambda t: saved.append(t))
        assert saved.wait_for_count(1)
        other_tag = make_tag()
        other_empty = discover_empty(scenario, phone, app, other_tag)
        with pytest.raises(ThingError):
            other_empty.initialize(token)

    def test_initialize_non_thing_rejected(self, scenario, phone, app):
        empty = discover_empty(scenario, phone, app, make_tag())
        with pytest.raises(ThingError):
            empty.initialize("not a thing")

    def test_repr(self, scenario, phone, app):
        empty = discover_empty(scenario, phone, app, make_tag())
        assert "formatted=True" in repr(empty)
