"""Unit tests for the listener normalization layer."""

import pytest

from repro.core.listeners import (
    Listener,
    TagReadListener,
    as_callback,
)


class TestAsCallback:
    def test_none_is_noop(self):
        callback = as_callback(None)
        callback()  # must not raise
        callback(1, 2, 3)

    def test_plain_callable_passes_through(self):
        calls = []
        callback = as_callback(lambda *a: calls.append(a))
        callback(1)
        assert calls == [(1,)]

    def test_listener_instance_uses_signal(self):
        calls = []

        class MyListener(TagReadListener):
            def signal(self, ref):
                calls.append(ref)

        as_callback(MyListener())("the-ref")
        assert calls == ["the-ref"]

    def test_listener_without_signal_override_raises_when_invoked(self):
        callback = as_callback(TagReadListener())
        with pytest.raises(NotImplementedError):
            callback("x")

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            as_callback(42)

    def test_listener_is_directly_callable(self):
        calls = []

        class MyListener(Listener):
            def signal(self, *args):
                calls.append(args)

        MyListener()(1, 2)
        assert calls == [(1, 2)]
