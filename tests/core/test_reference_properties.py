"""Property-based tests of the tag-reference queue semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.device import AndroidDevice
from repro.concurrent import EventLog
from repro.radio.environment import RfidEnvironment
from repro.radio.link import ScriptedLink

from tests.conftest import PlainNfcActivity, make_reference, text_tag

# Each step: (payload index written, whether the link tears on that attempt)
write_scripts = st.lists(
    st.tuples(st.booleans()), min_size=1, max_size=8
)


@given(
    payload_count=st.integers(min_value=1, max_value=8),
    tear_pattern=st.lists(st.booleans(), min_size=0, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_queue_order_and_last_write_wins(payload_count, tear_pattern):
    """Whatever tear pattern the link throws, successes arrive in schedule
    order and the tag ends holding the last scheduled write."""
    env = RfidEnvironment()
    phone = AndroidDevice("prop-phone", env)
    try:
        activity = phone.start_activity(PlainNfcActivity)
        # Tears from the pattern, then a clean link so everything finishes.
        phone.port.set_link(
            ScriptedLink([not tear for tear in tear_pattern], default=True)
        )
        tag = text_tag("seed")
        env.move_tag_into_field(tag, phone.port)
        reference = make_reference(activity, tag, phone)
        done = EventLog()
        for index in range(payload_count):
            reference.write(
                f"payload-{index}",
                on_written=lambda r, i=index: done.append(i),
                timeout=30.0,
            )
        assert done.wait_for_count(payload_count, timeout=10)
        assert done.snapshot() == list(range(payload_count))
        assert tag.read_ndef()[0].payload == f"payload-{payload_count - 1}".encode()
        assert reference.pending_count == 0
    finally:
        phone.shutdown()


@given(
    reads=st.integers(min_value=0, max_value=4),
    writes=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_interleaved_reads_observe_program_order(reads, writes):
    """A read scheduled after a write always observes that write (or later)."""
    env = RfidEnvironment()
    phone = AndroidDevice("order-phone", env)
    try:
        activity = phone.start_activity(PlainNfcActivity)
        tag = text_tag("initial")
        env.move_tag_into_field(tag, phone.port)
        reference = make_reference(activity, tag, phone)
        observations = EventLog()
        expected_count = 0
        for index in range(writes):
            reference.write(f"w{index}", timeout=30.0)
            for _ in range(reads):
                expected_count += 1
                reference.read(
                    on_read=lambda r, i=index: observations.append((i, r.cached)),
                    timeout=30.0,
                )
        assert observations.wait_for_count(expected_count, timeout=10)
        for written_index, observed in observations.snapshot():
            observed_index = int(observed[1:])
            assert observed_index >= written_index
    finally:
        phone.shutdown()


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_stop_leaves_no_thread_behind(operation_count):
    """stop() always retires the private event loop, queue drained or not.

    In the default reactor mode a reference owns no thread at all (its
    logical loop is a task on the device's shared pool); in the legacy
    ``threaded=True`` mode stop() must join the private thread.
    """
    env = RfidEnvironment()
    phone = AndroidDevice("stop-phone", env)
    try:
        activity = phone.start_activity(PlainNfcActivity)
        tag = text_tag("x")  # never in the field: everything stays queued
        threaded_tag = text_tag("y")
        reference = make_reference(activity, tag, phone)
        threaded_ref = make_reference(activity, threaded_tag, phone, threaded=True)
        for index in range(operation_count):
            reference.write(f"w{index}")
            threaded_ref.write(f"w{index}")
        reference.stop()
        threaded_ref.stop()
        assert reference.is_stopped
        assert reference.pending_count == 0
        assert reference._thread is None  # reactor mode: no private thread
        assert threaded_ref.is_stopped
        assert not threaded_ref._thread.is_alive()
    finally:
        phone.shutdown()
