"""Thread-safety tests: concurrent producers against one reference."""

import threading

from repro.concurrent import EventLog

from tests.conftest import make_reference, text_tag


class TestConcurrentEnqueue:
    def test_writes_from_many_threads_all_complete(self, scenario, phone, activity):
        """Eight threads race to enqueue writes; every listener fires and
        the tag ends holding one of the written values (no corruption)."""
        tag = text_tag("start")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        done = EventLog()
        threads_count, writes_per_thread = 8, 10

        def producer(thread_index: int) -> None:
            for write_index in range(writes_per_thread):
                reference.write(
                    f"t{thread_index}-w{write_index}",
                    on_written=lambda r: done.append(1),
                    timeout=30.0,
                )

        threads = [
            threading.Thread(target=producer, args=(index,))
            for index in range(threads_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        total = threads_count * writes_per_thread
        assert done.wait_for_count(total, timeout=30)
        final = tag.read_ndef()[0].payload.decode()
        assert final.startswith("t") and "-w" in final
        assert reference.pending_count == 0
        assert reference.successes == total

    def test_listeners_never_run_concurrently(self, scenario, phone, activity):
        """All listeners share the main looper: no two overlap in time."""
        tag = text_tag("x")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        in_flight = []
        violations = []
        done = EventLog()

        def listener(_ref) -> None:
            if in_flight:
                violations.append("overlap")
            in_flight.append(1)
            # A tiny window during which another listener would overlap.
            import time

            time.sleep(0.001)
            in_flight.pop()
            done.append(1)

        for index in range(20):
            reference.write(f"w{index}", on_written=listener, timeout=30.0)
        assert done.wait_for_count(20, timeout=30)
        assert violations == []

    def test_stop_races_with_enqueue(self, scenario, phone, activity):
        """stop() during a burst of enqueues never deadlocks or crashes."""
        from repro.errors import ReferenceStoppedError

        tag = text_tag("x")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        stop_after = threading.Event()

        def producer() -> None:
            for index in range(200):
                try:
                    reference.write(f"w{index}", timeout=30.0)
                except ReferenceStoppedError:
                    return
                if index == 50:
                    stop_after.set()

        thread = threading.Thread(target=producer)
        thread.start()
        assert stop_after.wait(5.0)
        reference.stop()
        thread.join(5.0)
        assert not thread.is_alive()
        assert reference.is_stopped
        assert reference.pending_count == 0
