"""Tests for Beamer and BeamReceivedListener: async, undirected pushes."""

import pytest

from repro.concurrent import EventLog
from repro.core.beam import Beamer, BeamReceivedListener
from repro.core.converters import (
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
)
from repro.core.nfc_activity import NFCActivity
from repro.core.operations import OperationOutcome
from repro.errors import ReferenceStoppedError

BEAM_TYPE = "application/x-beam-test"


class ReceiverApp(NFCActivity):
    def on_create(self):
        self.received = EventLog()
        app = self

        class Listener(BeamReceivedListener):
            def on_beam_received_from(self, obj, sender):
                app.received.append((sender, obj))

        self.listener = Listener(self, BEAM_TYPE, NdefMessageToStringConverter())


class SenderApp(NFCActivity):
    def on_create(self):
        self.beamer = Beamer(self, StringToNdefMessageConverter(BEAM_TYPE))


@pytest.fixture
def sender(scenario):
    phone = scenario.add_phone("sender")
    return phone, scenario.start(phone, SenderApp)


@pytest.fixture
def receiver(scenario):
    phone = scenario.add_phone("receiver")
    return phone, scenario.start(phone, ReceiverApp)


class TestDelivery:
    def test_beam_delivers_when_peers_touch(self, scenario, sender, receiver):
        sender_phone, sender_app = sender
        receiver_phone, receiver_app = receiver
        scenario.env.bring_together(sender_phone.port, receiver_phone.port)
        log = EventLog()
        sender_app.beamer.beam("hello", on_success=lambda: log.append("sent"))
        assert log.wait_for_count(1)
        assert receiver_app.received.wait_for_count(1)
        assert receiver_app.received.snapshot() == [("sender", "hello")]

    def test_beam_queued_until_peer_appears(self, scenario, sender, receiver):
        sender_phone, sender_app = sender
        receiver_phone, receiver_app = receiver
        log = EventLog()
        sender_app.beamer.beam("later", on_success=lambda: log.append("sent"))
        assert not log.wait_for_count(1, timeout=0.1)
        assert sender_app.beamer.pending_count == 1
        scenario.env.bring_together(sender_phone.port, receiver_phone.port)
        assert log.wait_for_count(1)
        assert receiver_app.received.wait_for_count(1)

    def test_beams_deliver_in_order(self, scenario, sender, receiver):
        sender_phone, sender_app = sender
        receiver_phone, receiver_app = receiver
        for index in range(5):
            sender_app.beamer.beam(f"m{index}")
        scenario.env.bring_together(sender_phone.port, receiver_phone.port)
        assert receiver_app.received.wait_for_count(5)
        assert [obj for _, obj in receiver_app.received.snapshot()] == [
            f"m{i}" for i in range(5)
        ]

    def test_beam_timeout_fires_failure(self, scenario, sender):
        _, sender_app = sender
        log = EventLog()
        operation = sender_app.beamer.beam(
            "nobody", on_failed=lambda: log.append("failed"), timeout=0.15
        )
        assert log.wait_for_count(1, timeout=3)
        assert operation.outcome is OperationOutcome.TIMED_OUT
        assert sender_app.beamer.timeouts == 1

    def test_listeners_run_on_main_thread(self, scenario, sender, receiver):
        import threading

        sender_phone, sender_app = sender
        receiver_phone, _ = receiver
        scenario.env.bring_together(sender_phone.port, receiver_phone.port)
        log = EventLog()
        sender_app.beamer.beam(
            "x", on_success=lambda: log.append(threading.current_thread().name)
        )
        assert log.wait_for_count(1)
        assert log.snapshot() == ["looper-sender-main"]


class TestReceiverFiltering:
    def test_foreign_mime_ignored(self, scenario, receiver):
        other_phone = scenario.add_phone("other")

        class OtherSender(NFCActivity):
            def on_create(self):
                self.beamer = Beamer(
                    self, StringToNdefMessageConverter("other/type")
                )

        other_app = scenario.start(other_phone, OtherSender)
        receiver_phone, receiver_app = receiver
        scenario.env.bring_together(other_phone.port, receiver_phone.port)
        log = EventLog()
        other_app.beamer.beam("alien", on_success=lambda: log.append("sent"))
        assert log.wait_for_count(1)
        assert receiver_phone.sync()
        assert len(receiver_app.received) == 0

    def test_check_condition_filters(self, scenario, sender):
        receiver_phone = scenario.add_phone("picky")

        class PickyApp(NFCActivity):
            def on_create(self):
                self.received = EventLog()
                app = self

                class Picky(BeamReceivedListener):
                    def check_condition(self, obj):
                        return obj.startswith("yes")

                    def on_beam_received(self, obj):
                        app.received.append(obj)

                self.listener = Picky(self, BEAM_TYPE, NdefMessageToStringConverter())

        picky_app = scenario.start(receiver_phone, PickyApp)
        sender_phone, sender_app = sender
        scenario.env.bring_together(sender_phone.port, receiver_phone.port)
        done = EventLog()
        sender_app.beamer.beam("no thanks", on_success=lambda: done.append(1))
        sender_app.beamer.beam("yes please", on_success=lambda: done.append(2))
        assert done.wait_for_count(2)
        assert receiver_phone.sync()
        assert picky_app.received.snapshot() == ["yes please"]

    def test_unconvertible_beam_ignored(self, scenario, receiver):
        receiver_phone, receiver_app = receiver
        other = scenario.add_phone("rawsender")
        from repro.ndef.message import NdefMessage
        from repro.ndef.mime import mime_record

        scenario.env.bring_together(other.port, receiver_phone.port)
        bad = NdefMessage([mime_record(BEAM_TYPE, b"\xff\xfe\xf0")])
        other.nfc_adapter.push_now(bad)
        assert receiver_phone.sync()
        assert len(receiver_app.received) == 0


class TestLifecycle:
    def test_stop_cancels_pending(self, scenario, sender):
        _, sender_app = sender
        operation = sender_app.beamer.beam("never")
        sender_app.beamer.stop()
        assert operation.outcome is OperationOutcome.CANCELLED
        with pytest.raises(ReferenceStoppedError):
            sender_app.beamer.beam("after stop")

    def test_activity_destroy_stops_beamer(self, scenario, sender):
        sender_phone, sender_app = sender
        beamer = sender_app.beamer
        sender_phone.finish_activity(sender_app)
        with pytest.raises(ReferenceStoppedError):
            beamer.beam("dead")

    def test_converter_failure_settles_immediately(self, scenario, sender):
        _, sender_app = sender
        from repro.core.converters import ObjectToNdefMessageConverter
        from repro.errors import ConverterError

        class Rejecting(ObjectToNdefMessageConverter):
            def convert(self, obj):
                raise ConverterError("nope")

        beamer = Beamer(sender_app, Rejecting())
        log = EventLog()
        operation = beamer.beam("x", on_failed=lambda: log.append("failed"))
        assert operation.outcome is OperationOutcome.FAILED
        assert log.wait_for_count(1)
