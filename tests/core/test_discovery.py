"""Tests for TagDiscoverer: detection callbacks, filtering, cache priming."""

import pytest

from repro.concurrent import EventLog
from repro.core.converters import (
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
)
from repro.core.discovery import TagDiscoverer
from repro.core.nfc_activity import NFCActivity
from repro.tags.factory import make_tag

from tests.conftest import TEXT_TYPE, text_message, text_tag


class RecordingDiscoverer(TagDiscoverer):
    def __init__(self, activity, mime_type=TEXT_TYPE, **kwargs):
        self.log = EventLog()
        super().__init__(
            activity,
            mime_type,
            NdefMessageToStringConverter(),
            StringToNdefMessageConverter(mime_type),
            **kwargs,
        )

    def on_tag_detected(self, reference):
        self.log.append(("detected", reference))

    def on_tag_redetected(self, reference):
        self.log.append(("redetected", reference))

    def on_empty_tag_detected(self, reference):
        self.log.append(("empty", reference))


class DiscovererApp(NFCActivity):
    DISCOVERER_KWARGS = {}

    def on_create(self):
        self.discoverer = RecordingDiscoverer(self, **self.DISCOVERER_KWARGS)


@pytest.fixture
def app(scenario, phone):
    return scenario.start(phone, DiscovererApp)


class TestDetection:
    def test_first_tap_is_detected(self, scenario, phone, app):
        tag = text_tag("hello")
        scenario.put(tag, phone)
        assert app.discoverer.log.wait_for_count(1)
        event, reference = app.discoverer.log.snapshot()[0]
        assert event == "detected"
        assert reference.uid == tag.uid

    def test_second_tap_is_redetected_with_same_reference(
        self, scenario, phone, app
    ):
        tag = text_tag("hello")
        scenario.put(tag, phone)
        scenario.take(tag, phone)
        scenario.put(tag, phone)
        assert app.discoverer.log.wait_for_count(2)
        (_, first_ref), (second_event, second_ref) = app.discoverer.log.snapshot()
        assert second_event == "redetected"
        assert second_ref is first_ref

    def test_cache_primed_from_dispatch(self, scenario, phone, app):
        tag = text_tag("primed-content")
        scenario.put(tag, phone)
        assert app.discoverer.log.wait_for_count(1)
        _, reference = app.discoverer.log.snapshot()[0]
        assert reference.cached == "primed-content"

    def test_foreign_mime_type_disregarded(self, scenario, phone, app):
        tag = text_tag("foreign", mime_type="other/type")
        scenario.put(tag, phone)
        assert phone.sync()
        assert len(app.discoverer.log) == 0

    def test_unconvertible_content_disregarded(self, scenario, phone, app):
        tag = make_tag(content=text_message("x"))
        tag.write_ndef(
            __import__("repro.ndef.message", fromlist=["NdefMessage"]).NdefMessage(
                [
                    __import__(
                        "repro.ndef.mime", fromlist=["mime_record"]
                    ).mime_record(TEXT_TYPE, b"\xff\xfe\xf0")
                ]
            )
        )
        scenario.put(tag, phone)
        assert phone.sync()
        assert len(app.discoverer.log) == 0


class TestEmptyTags:
    def test_empty_tags_ignored_by_default(self, scenario, phone, app):
        scenario.put(make_tag(), phone)
        assert phone.sync()
        assert len(app.discoverer.log) == 0

    def test_empty_tags_delivered_when_opted_in(self, scenario, phone):
        class EmptyApp(DiscovererApp):
            DISCOVERER_KWARGS = {"accept_empty": True}

        app = scenario.start(phone, EmptyApp)
        scenario.put(make_tag(), phone)
        assert app.discoverer.log.wait_for_count(1)
        assert app.discoverer.log.snapshot()[0][0] == "empty"

    def test_unformatted_tags_count_as_empty(self, scenario, phone):
        class EmptyApp(DiscovererApp):
            DISCOVERER_KWARGS = {"accept_empty": True}

        app = scenario.start(phone, EmptyApp)
        scenario.put(make_tag(formatted=False), phone)
        assert app.discoverer.log.wait_for_count(1)
        assert app.discoverer.log.snapshot()[0][0] == "empty"


class TestCheckCondition:
    def test_condition_filters_callbacks(self, scenario, phone):
        class Conditional(RecordingDiscoverer):
            def check_condition(self, reference):
                return "wanted" in (reference.cached or "")

        class ConditionalApp(NFCActivity):
            def on_create(self):
                self.discoverer = Conditional(self)

        app = scenario.start(phone, ConditionalApp)
        scenario.put(text_tag("boring content"), phone)
        assert phone.sync()
        assert len(app.discoverer.log) == 0
        scenario.put(text_tag("wanted content"), phone)
        assert app.discoverer.log.wait_for_count(1)

    def test_condition_sees_cached_data(self, scenario, phone):
        seen = EventLog()

        class Spy(RecordingDiscoverer):
            def check_condition(self, reference):
                seen.append(reference.cached)
                return True

        class SpyApp(NFCActivity):
            def on_create(self):
                self.discoverer = Spy(self)

        scenario.start(phone, SpyApp)
        scenario.put(text_tag("visible-to-condition"), phone)
        assert seen.wait_for_count(1)
        assert seen.snapshot() == ["visible-to-condition"]

    def test_rejected_tag_still_wakes_reference(self, scenario, phone):
        """check_condition gates callbacks, not the retry machinery."""

        class RejectAll(RecordingDiscoverer):
            def check_condition(self, reference):
                return False

        class RejectApp(NFCActivity):
            def on_create(self):
                self.discoverer = RejectAll(self)

        app = scenario.start(phone, RejectApp)
        tag = text_tag("content")
        scenario.put(tag, phone)
        assert phone.sync()
        # The reference exists in the factory even though no callback ran.
        assert app.reference_factory.lookup(tag.uid) is not None


class TestConstruction:
    def test_requires_nfc_activity(self, scenario, phone):
        from repro.android.activity import Activity

        class Plain(Activity):
            pass

        plain = phone.start_activity(Plain)
        with pytest.raises(TypeError):
            RecordingDiscoverer(plain)

    def test_two_discoverers_different_mime_types(self, scenario, phone):
        class TwoApp(NFCActivity):
            def on_create(self):
                self.text = RecordingDiscoverer(self, "app/one")
                self.other = RecordingDiscoverer(self, "app/two")

        app = scenario.start(phone, TwoApp)
        scenario.put(text_tag("for-two", mime_type="app/two"), phone)
        assert app.other.log.wait_for_count(1)
        assert len(app.text.log) == 0
