"""Unit tests for the Operation data structure."""

from repro.core.operations import Operation, OperationKind, OperationOutcome


def make_operation(**kwargs) -> Operation:
    defaults = dict(
        kind=OperationKind.WRITE,
        deadline=10.0,
        on_success=lambda *a: None,
        on_failure=lambda *a: None,
    )
    defaults.update(kwargs)
    return Operation(**defaults)


class TestOperation:
    def test_ids_are_unique_and_increasing(self):
        first = make_operation()
        second = make_operation()
        assert first.op_id != second.op_id
        assert second.op_id > first.op_id

    def test_starts_pending(self):
        operation = make_operation()
        assert operation.outcome is OperationOutcome.PENDING
        assert not operation.is_settled
        assert operation.attempts == 0
        assert not operation.raw

    def test_settled_states(self):
        for outcome in (
            OperationOutcome.SUCCEEDED,
            OperationOutcome.TIMED_OUT,
            OperationOutcome.FAILED,
            OperationOutcome.CANCELLED,
        ):
            operation = make_operation()
            operation.outcome = outcome
            assert operation.is_settled

    def test_repr_mentions_kind_and_outcome(self):
        operation = make_operation(kind=OperationKind.READ)
        text = repr(operation)
        assert "read" in text
        assert "pending" in text

    def test_kinds_cover_tag_surface(self):
        assert {k.value for k in OperationKind} == {
            "read",
            "write",
            "lock",
            "format",
        }
