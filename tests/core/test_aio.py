"""The await-native surface: ``ref.aio`` / ``thing.aio`` / streams.

These adapters must behave identically over both reactor backends — the
coroutine face is a completion style, not a scheduling mode — so the
reference-level tests run once per backend. The awaiting loop here is
the test's own (``asyncio.run``); cross-loop delivery is exercised
implicitly because listeners settle on the device's main looper thread.
"""

import asyncio
import threading

import pytest

from repro.core.aio import AsyncTagReference, run_on_reactor, tag_stream
from repro.core.discovery import TagDiscoverer
from repro.core.futures import OperationTimeoutError, read_future
from repro.core.scheduler import AsyncioReactor
from repro.leasing.aio import LeaseDeniedError, acquire, release, renew
from repro.leasing.manager import LeaseManager
from repro.things.thing import Thing

from tests.conftest import (
    TEXT_TYPE,
    PlainNfcActivity,
    make_reference,
    string_converters,
    text_tag,
)

BACKENDS = ("threaded", "asyncio")


def _phone_and_activity(scenario, mode):
    phone = scenario.add_phone(f"{mode}-phone", reactor_mode=mode)
    activity = scenario.start(phone, PlainNfcActivity)
    return phone, activity


class TestAwaitableFuture:
    def test_await_settled_and_pending_futures(self, scenario):
        phone, activity = _phone_and_activity(scenario, "threaded")
        tag = text_tag("hello")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)

        async def scenario_run():
            value = await read_future(reference)
            future = read_future(reference)
            again = await future  # may already be settled: both paths legal
            return value, again

        value, again = asyncio.run(scenario_run())
        assert value == "hello"
        assert again == "hello"

    def test_await_raises_what_result_would(self, scenario):
        phone, activity = _phone_and_activity(scenario, "threaded")
        reference = make_reference(activity, text_tag("away"), phone)

        async def scenario_run():
            await read_future(reference, timeout=0.1)

        with pytest.raises(OperationTimeoutError):
            asyncio.run(scenario_run())


@pytest.mark.parametrize("mode", BACKENDS)
class TestAsyncTagReference:
    def test_read_write_roundtrip(self, scenario, mode):
        phone, activity = _phone_and_activity(scenario, mode)
        tag = text_tag("start")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        assert isinstance(reference.aio, AsyncTagReference)

        async def scenario_run():
            before = await reference.aio.read()
            await reference.aio.write("updated")
            return before, await reference.aio.read()

        before, after = asyncio.run(scenario_run())
        assert before == "start"
        assert after == "updated"
        assert tag.read_ndef()[0].payload == b"updated"

    def test_format_then_write_on_blank_tag(self, scenario, mode):
        phone, activity = _phone_and_activity(scenario, mode)
        tag = scenario.add_tag(formatted=False)
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)

        async def scenario_run():
            await reference.aio.format()
            await reference.aio.write("fresh")
            return await reference.aio.read()

        assert asyncio.run(scenario_run()) == "fresh"

    def test_raw_roundtrip_and_concurrent_awaits(self, scenario, mode):
        phone, activity = _phone_and_activity(scenario, mode)
        tags = [text_tag(f"v{index}") for index in range(5)]
        for tag in tags:
            scenario.put(tag, phone)
        references = [make_reference(activity, tag, phone) for tag in tags]

        async def scenario_run():
            values = await asyncio.gather(
                *(reference.aio.read() for reference in references)
            )
            message = await references[0].aio.read_raw()
            return values, message

        values, message = asyncio.run(scenario_run())
        assert values == [f"v{index}" for index in range(5)]
        assert message[0].payload == b"v0"


class _Badge(Thing):
    def __init__(self, activity=None, owner="nobody", level=1):
        super().__init__(activity)
        self.owner = owner
        self.level = level


class _BadgeActivity(PlainNfcActivity):
    pass


@pytest.mark.parametrize("mode", BACKENDS)
class TestAsyncThing:
    def _bound_badge(self, scenario, mode):
        from repro.core.converters import JsonToObjectConverter, ObjectToJsonConverter
        from repro.tags.factory import make_tag

        phone = scenario.add_phone(f"{mode}-phone", reactor_mode=mode)
        activity = scenario.start(phone, _BadgeActivity)
        read_conv = JsonToObjectConverter(_Badge)
        write_conv = ObjectToJsonConverter(TEXT_TYPE)
        message = write_conv.convert(_Badge("alice", 3))
        tag = make_tag("NTAG216", content=message)
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        reference._read_converter = read_conv  # noqa: SLF001 - thing converters
        reference._write_converter = write_conv  # noqa: SLF001
        badge = _Badge("alice", 3)
        badge._bind(reference, activity)  # noqa: SLF001 - test harness binding
        return tag, badge

    def test_save_and_refresh(self, scenario, mode):
        tag, badge = self._bound_badge(scenario, mode)

        async def scenario_run():
            badge.level = 4
            await badge.aio.save()
            badge.level = 0  # stale local state
            refreshed = await badge.aio.refresh()
            return refreshed.level

        assert asyncio.run(scenario_run()) == 4
        assert b'"level": 4' in tag.read_ndef()[0].payload


class TestTagStream:
    def test_async_for_over_detections(self, scenario):
        phone, activity = _phone_and_activity(scenario, "threaded")
        discoverer = TagDiscoverer(activity, TEXT_TYPE, *string_converters())
        tags = [text_tag(f"s{index}") for index in range(3)]

        async def scenario_run():
            seen = []
            async with discoverer.stream() as stream:
                for tag in tags:
                    scenario.put(tag, phone)
                async for reference in stream:
                    seen.append(reference.cached)
                    if len(seen) == 3:
                        break
            return seen

        assert sorted(asyncio.run(scenario_run())) == ["s0", "s1", "s2"]

    def test_event_filter_and_close_ends_iteration(self, scenario):
        phone, activity = _phone_and_activity(scenario, "threaded")
        discoverer = TagDiscoverer(activity, TEXT_TYPE, *string_converters())
        tag = text_tag("twice")

        async def scenario_run():
            stream = tag_stream(discoverer, events=("redetected",))
            collected = []
            async with stream:
                scenario.put(tag, phone)  # "detected": filtered out
                scenario.take(tag, phone)
                scenario.put(tag, phone)  # "redetected": delivered
                async for reference in stream:
                    collected.append(reference.cached)
                    stream.close()
            return collected

        assert asyncio.run(scenario_run()) == ["twice"]
        assert discoverer._detection_listeners == []  # noqa: SLF001 - unsubscribed

    def test_bounded_buffer_sheds_oldest(self, scenario):
        phone, activity = _phone_and_activity(scenario, "threaded")
        discoverer = TagDiscoverer(activity, TEXT_TYPE, *string_converters())

        async def scenario_run():
            stream = tag_stream(discoverer, max_buffer=2)
            async with stream:
                for index in range(5):
                    stream._push(f"ref{index}")  # noqa: SLF001 - buffer unit test
                first = await stream.__anext__()
                second = await stream.__anext__()
                return first, second, stream.dropped

        first, second, dropped = asyncio.run(scenario_run())
        assert (first, second) == ("ref3", "ref4")
        assert dropped == 3


@pytest.mark.parametrize("mode", BACKENDS)
class TestLeasingAio:
    def test_acquire_renew_release(self, scenario, mode):
        phone, activity = _phone_and_activity(scenario, mode)
        tag = text_tag("asset")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        manager = LeaseManager(reference, f"{mode}-phone", drift_bound=0.0)

        async def scenario_run():
            lease = await acquire(manager, duration=30.0)
            extended = await renew(manager, duration=60.0)
            await release(manager)
            return lease, extended

        lease, extended = asyncio.run(scenario_run())
        assert lease.device_id == f"{mode}-phone"
        assert extended.expires_at > lease.expires_at
        assert manager.held_lease is None

    def test_denied_acquire_raises(self, scenario, mode):
        phone, activity = _phone_and_activity(scenario, mode)
        rival_phone = scenario.add_phone("rival")
        rival_activity = scenario.start(rival_phone, PlainNfcActivity)
        tag = text_tag("contested")
        scenario.put(tag, rival_phone)
        rival_ref = make_reference(rival_activity, tag, rival_phone)
        rival = LeaseManager(rival_ref, "rival", drift_bound=0.0)

        done = threading.Event()
        rival.acquire(3600.0, on_acquired=lambda lease: done.set())
        assert done.wait(5)
        scenario.take(tag, rival_phone)
        scenario.put(tag, phone)

        reference = make_reference(activity, tag, phone)
        manager = LeaseManager(reference, "late-comer", drift_bound=0.0)

        async def scenario_run():
            await acquire(manager, duration=30.0)

        with pytest.raises(LeaseDeniedError):
            asyncio.run(scenario_run())


class TestRunOnReactor:
    def test_coroutine_runs_on_the_reactor_loop(self, scenario):
        phone, activity = _phone_and_activity(scenario, "asyncio")
        tag = text_tag("onloop")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        reactor = phone.reactor
        assert isinstance(reactor, AsyncioReactor)

        async def on_loop():
            value = await reference.aio.read()
            await reference.aio.write(value + "!")
            return await reference.aio.read()

        handle = run_on_reactor(reactor, on_loop())
        assert handle.result(timeout=10) == "onloop!"

    def test_threaded_reactor_is_rejected(self, scenario):
        phone, _activity = _phone_and_activity(scenario, "threaded")

        async def nothing():
            return None

        coroutine = nothing()
        with pytest.raises(TypeError, match="mode='asyncio'"):
            run_on_reactor(phone.reactor, coroutine)
        coroutine.close()
