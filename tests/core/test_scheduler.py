"""Tests for the reactor scheduler and reactor-backed reference semantics.

The first half exercises :class:`repro.core.scheduler.Reactor` directly
(serial tasks, cross-task concurrency, deadline timers, bounded lazy
workers). The second half checks the paper guarantees *through* the
reactor: per-tag FIFO ordering for pipelined operations and freedom from
cross-tag head-of-line blocking, even on a single-worker pool.
"""

import threading
import time

from repro.clock import ManualClock
from repro.concurrent import EventLog, wait_until
from repro.core.scheduler import PortReadyQueue, Reactor, default_worker_count

from tests.conftest import (
    make_reference,
    string_converters,
    text_tag,
)


class TestReactor:
    def test_lazy_threads_and_bounded_pool(self):
        """No threads until the first wake; never more than the bound."""
        reactor = Reactor(max_workers=2, name="lazy")
        try:
            assert reactor.thread_count == 0
            task = reactor.register(lambda: None, name="noop")
            assert reactor.thread_count == 0  # registration is free
            task.wake()
            assert wait_until(lambda: reactor.steps_executed >= 1, timeout=5)
            # 2 workers at most, plus the timer thread.
            assert reactor.thread_count <= 3
        finally:
            reactor.stop()
        assert reactor.is_stopped
        assert wait_until(lambda: reactor.thread_count == 0, timeout=5)

    def test_default_worker_count_is_bounded(self):
        assert 1 <= default_worker_count() <= 32

    def test_task_is_serial_even_under_concurrent_wakes(self):
        """The same task never runs on two workers at once."""
        reactor = Reactor(max_workers=4, name="serial")
        try:
            lock = threading.Lock()
            state = {"active": 0, "overlaps": 0, "runs": 0}

            def step():
                with lock:
                    state["active"] += 1
                    if state["active"] > 1:
                        state["overlaps"] += 1
                time.sleep(0.001)
                with lock:
                    state["active"] -= 1
                    state["runs"] += 1
                return None

            task = reactor.register(step, name="hammered")
            wakers = [
                threading.Thread(
                    target=lambda: [task.wake() for _ in range(50)]
                )
                for _ in range(4)
            ]
            for waker in wakers:
                waker.start()
            for waker in wakers:
                waker.join()
            assert wait_until(lambda: state["runs"] >= 1, timeout=5)
            task.wake()
            assert wait_until(lambda: state["active"] == 0, timeout=5)
            assert state["overlaps"] == 0
        finally:
            reactor.stop()

    def test_distinct_tasks_run_concurrently(self):
        """Two tasks meet at a barrier: only possible on two workers."""
        reactor = Reactor(max_workers=4, name="parallel")
        try:
            barrier = threading.Barrier(2, timeout=5)
            met = EventLog()

            def make_step(label):
                def step():
                    barrier.wait()
                    met.append(label)
                    return None

                return step

            reactor.register(make_step("a"), name="a").wake()
            reactor.register(make_step("b"), name="b").wake()
            assert met.wait_for_count(2, timeout=5)
        finally:
            reactor.stop()

    def test_wake_during_step_causes_rerun(self):
        """A wake landing mid-step is never lost: another step follows."""
        reactor = Reactor(max_workers=2, name="rerun")
        try:
            started = threading.Event()
            release = threading.Event()
            runs = []

            def step():
                runs.append(1)
                started.set()
                release.wait(5)
                return None

            task = reactor.register(step, name="rerunner")
            task.wake()
            assert started.wait(5)
            task.wake()  # arrives while the first step is still running
            release.set()
            assert wait_until(lambda: len(runs) == 2, timeout=5)
        finally:
            reactor.stop()

    def test_manual_clock_timer_fires_on_advance_only(self):
        """A future deadline fires when simulated time reaches it."""
        clock = ManualClock()
        reactor = Reactor(clock=clock, max_workers=2, name="timed")
        try:
            fired = EventLog()
            state = {"scheduled": False}

            def step():
                if not state["scheduled"]:
                    state["scheduled"] = True
                    return clock.now() + 5.0
                fired.append(clock.now())
                return None

            reactor.register(step, name="alarm").wake()
            assert wait_until(lambda: state["scheduled"], timeout=5)
            clock.advance(4.0)
            time.sleep(0.05)  # give a wrong firing the chance to happen
            assert len(fired) == 0
            clock.advance(1.5)
            assert fired.wait_for_count(1, timeout=5)
            assert fired.snapshot() == [5.5]
        finally:
            reactor.stop()

    def test_immediate_requeue_when_returned_time_already_passed(self):
        """Returning a time at or before "now" means run again at once."""
        reactor = Reactor(max_workers=2, name="spin")
        try:
            runs = []

            def step():
                runs.append(1)
                if len(runs) < 10:
                    return 0.0  # long past: immediate requeue
                return None

            reactor.register(step, name="spinner").wake()
            assert wait_until(lambda: len(runs) == 10, timeout=5)
        finally:
            reactor.stop()

    def test_many_tasks_complete_on_tiny_pool(self):
        """The bound limits parallelism, never completion."""
        reactor = Reactor(max_workers=2, name="tiny")
        try:
            done = EventLog()
            for index in range(40):
                reactor.register(
                    lambda i=index: done.append(i) or None, name=f"t{index}"
                ).wake()
            assert done.wait_for_count(40, timeout=10)
            assert reactor.thread_count <= 3  # 2 workers + timer
        finally:
            reactor.stop()

    def test_step_exception_does_not_kill_the_pool(self):
        reactor = Reactor(max_workers=2, name="faulty")
        try:
            done = EventLog()

            def bad_step():
                raise RuntimeError("boom")

            reactor.register(bad_step, name="bad").wake()
            reactor.register(lambda: done.append("ok") or None, name="good").wake()
            assert done.wait_for_count(1, timeout=5)
        finally:
            reactor.stop()

    def test_wake_after_stop_is_a_noop(self):
        reactor = Reactor(max_workers=2, name="stopped")
        runs = []
        task = reactor.register(lambda: runs.append(1) or None, name="late")
        reactor.stop()
        task.wake()
        time.sleep(0.02)
        assert runs == []


class TestPortReadyQueue:
    """The ready set handed to the per-port drain: generations guard
    against lost wakeups, rotation spreads service starts across tags."""

    def test_clear_only_succeeds_on_matching_generation(self):
        queue = PortReadyQueue()
        queue.mark("a")
        (item,) = queue.snapshot()
        key, generation = item
        queue.mark("a")  # producer re-marked mid-drain
        assert not queue.clear(key, generation)
        (_, fresh) = queue.snapshot()[0]
        assert queue.clear(key, fresh)
        assert queue.snapshot() == []

    def test_plain_snapshot_keeps_insertion_order(self):
        queue = PortReadyQueue()
        for key in ("a", "b", "c"):
            queue.mark(key)
        assert [key for key, _ in queue.snapshot()] == ["a", "b", "c"]
        # Un-rotated snapshots never move the starting point.
        assert [key for key, _ in queue.snapshot()] == ["a", "b", "c"]

    def test_rotated_snapshots_cycle_the_starting_key(self):
        queue = PortReadyQueue()
        for key in ("a", "b", "c"):
            queue.mark(key)
        starts = [queue.snapshot(rotate=True)[0][0] for _ in range(6)]
        assert starts == ["a", "b", "c", "a", "b", "c"]
        # Every rotation is a full permutation, not a truncation.
        assert sorted(k for k, _ in queue.snapshot(rotate=True)) == ["a", "b", "c"]

    def test_rotation_survives_the_cursor_key_vanishing(self):
        queue = PortReadyQueue()
        for key in ("a", "b", "c"):
            queue.mark(key)
        queue.snapshot(rotate=True)  # cursor now at "b"
        queue.discard("b")
        assert [key for key, _ in queue.snapshot(rotate=True)] == ["a", "c"]

    def test_has_other(self):
        queue = PortReadyQueue()
        assert not queue.has_other("a")
        queue.mark("a")
        assert not queue.has_other("a")
        queue.mark("b")
        assert queue.has_other("a")
        queue.discard("b")
        assert not queue.has_other("a")


class TestReactorOrdering:
    """Paper guarantees observed through reactor-backed references."""

    def test_pipelined_format_write_read_on_blank_tag(
        self, scenario, phone, activity
    ):
        """format -> write -> read on a factory-blank tag, scheduled
        back-to-back, completes strictly in program order."""
        tag = scenario.add_tag(formatted=False)
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        log = EventLog()
        reference.format(on_formatted=lambda r: log.append("formatted"))
        reference.write("hello", on_written=lambda r: log.append("written"))
        reference.read(on_read=lambda r: log.append(("read", r.cached)))
        assert log.wait_for_count(3, timeout=10)
        assert log.snapshot() == ["formatted", "written", ("read", "hello")]

    def test_absent_tag_never_starves_present_tag(
        self, scenario, phone, activity
    ):
        """The ablation scenario on the shared pool: a reference retrying
        an out-of-range tag must not delay a present tag's operations."""
        absent = text_tag("absent")
        present = text_tag("present")
        scenario.put(present, phone)
        ref_absent = make_reference(activity, absent, phone)
        ref_present = make_reference(activity, present, phone)
        done = EventLog()
        ref_absent.write("never-lands", timeout=30.0)
        for index in range(20):
            ref_present.write(
                f"w{index}", on_written=lambda r, i=index: done.append(i)
            )
        assert done.wait_for_count(20, timeout=5)
        assert done.snapshot() == list(range(20))
        assert ref_absent.pending_count == 1  # still queued, still silent
        assert present.read_ndef()[0].payload == b"w19"

    def test_no_head_of_line_blocking_even_with_one_worker(
        self, scenario, phone, activity
    ):
        """The sharpest form: a single-worker reactor. If an absent tag's
        retry loop ever held the worker, the present tag could never
        proceed; because waiting tasks return to the deadline heap, it
        does."""
        from repro.android.nfc.tech import Tag
        from repro.core.reference import TagReference

        reactor = Reactor(max_workers=1, name="hol-test")
        try:
            absent = text_tag("a")
            present = text_tag("b")
            scenario.put(present, phone)
            read_conv, write_conv = string_converters()
            ref_absent = TagReference(
                Tag(absent, phone.port),
                activity,
                read_conv,
                write_conv,
                reactor=reactor,
            )
            ref_present = TagReference(
                Tag(present, phone.port),
                activity,
                read_conv,
                write_conv,
                reactor=reactor,
            )
            try:
                done = EventLog()
                ref_absent.write("blocked", timeout=30.0)
                ref_present.write("lands", on_written=lambda r: done.append("ok"))
                assert done.wait_for_count(1, timeout=5)
                assert present.read_ndef()[0].payload == b"lands"
                assert ref_absent.pending_count == 1
            finally:
                ref_absent.stop()
                ref_present.stop()
        finally:
            reactor.stop()

    def test_absent_tag_operation_still_times_out_under_reactor(
        self, scenario, phone, activity
    ):
        """Timeouts are driven by the deadline heap, not a polling loop."""
        tag = text_tag("away")
        reference = make_reference(activity, tag, phone)
        failed = EventLog()
        reference.write(
            "doomed", on_failed=lambda r: failed.append("timeout"), timeout=0.05
        )
        assert failed.wait_for_count(1, timeout=5)
        assert reference.pending_count == 0
        assert reference.timeouts == 1
