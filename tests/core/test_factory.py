"""Unit tests for the per-activity tag reference identity map."""

from repro.android.nfc.tech import Tag
from repro.concurrent import EventLog
from repro.tags.factory import make_tag

from tests.conftest import make_reference, string_converters, text_tag


class TestUniqueness:
    def test_same_tag_yields_same_reference(self, scenario, phone, activity):
        tag = text_tag("x")
        first = make_reference(activity, tag, phone)
        second = make_reference(activity, tag, phone)
        assert first is second

    def test_is_new_flag(self, scenario, phone, activity):
        tag = text_tag("x")
        read_conv, write_conv = string_converters()
        handle = Tag(tag, phone.port)
        _, new_first = activity.reference_factory.get_or_create(
            handle, read_conv, write_conv
        )
        _, new_second = activity.reference_factory.get_or_create(
            handle, read_conv, write_conv
        )
        assert new_first and not new_second

    def test_different_tags_different_references(self, scenario, phone, activity):
        a = make_reference(activity, text_tag("a"), phone)
        b = make_reference(activity, text_tag("b"), phone)
        assert a is not b
        assert len(activity.reference_factory) == 2

    def test_different_activities_have_independent_maps(self, scenario):
        from tests.conftest import PlainNfcActivity

        phone = scenario.add_phone("p1")
        first = scenario.start(phone, PlainNfcActivity)
        second = scenario.start(phone, PlainNfcActivity)
        tag = text_tag("x")
        ref_one = make_reference(first, tag, phone)
        ref_two = make_reference(second, tag, phone)
        assert ref_one is not ref_two


class TestLookupAndRelease:
    def test_lookup_by_uid(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        assert activity.reference_factory.lookup(tag.uid) is reference
        assert activity.reference_factory.lookup(b"\x00" * 7) is None

    def test_release_stops_and_forgets(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        assert activity.reference_factory.release(tag.uid)
        assert reference.is_stopped
        assert activity.reference_factory.lookup(tag.uid) is None

    def test_release_unknown_uid_returns_false(self, activity):
        assert not activity.reference_factory.release(b"\x01" * 7)

    def test_reference_recreated_after_release(self, scenario, phone, activity):
        tag = text_tag("x")
        first = make_reference(activity, tag, phone)
        activity.reference_factory.release(tag.uid)
        second = make_reference(activity, tag, phone)
        assert second is not first
        assert not second.is_stopped

    def test_stopped_reference_is_replaced_on_next_get(self, scenario, phone, activity):
        tag = text_tag("x")
        first = make_reference(activity, tag, phone)
        first.stop()
        second = make_reference(activity, tag, phone)
        assert second is not first

    def test_stop_all(self, scenario, phone, activity):
        refs = [make_reference(activity, text_tag(str(i)), phone) for i in range(3)]
        activity.reference_factory.stop_all()
        assert all(r.is_stopped for r in refs)
        assert len(activity.reference_factory) == 0

    def test_stop_all_with_notification(self, scenario, phone, activity):
        tag = make_tag()
        reference = make_reference(activity, tag, phone)
        log = EventLog()
        reference.write("queued", on_failed=lambda r: log.append("cancelled"))
        activity.reference_factory.stop_all(notify_pending=True)
        assert log.wait_for_count(1)


class TestActivityTeardown:
    def test_destroying_activity_stops_references(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        phone.finish_activity(activity)
        assert reference.is_stopped
