"""The asyncio reactor backend: same ReactorTask contract, one loop.

Companion to ``tests/core/test_scheduler.py`` — every guarantee the
threaded backend gives (serial tasks, rerun-on-mid-step-wake, deadline
timers, cancellation, crash isolation) must hold when the tasks step on
a single asyncio event loop instead of a worker pool, and ``ManualClock
.advance()`` must fire loop timers just as deterministically as it
notifies the threaded timer thread.
"""

import threading
import time

import pytest

from repro.clock import ManualClock, SystemClock
from repro.concurrent import EventLog, wait_until
from repro.core.scheduler import AsyncioReactor, Reactor

from tests.conftest import PlainNfcActivity as _PlainActivity
from tests.conftest import make_reference, text_tag


class TestDispatch:
    def test_mode_asyncio_constructs_the_asyncio_backend(self):
        reactor = Reactor(mode="asyncio", name="dispatch")
        try:
            assert isinstance(reactor, AsyncioReactor)
            assert reactor.mode == "asyncio"
        finally:
            reactor.stop()

    def test_default_mode_stays_threaded(self):
        reactor = Reactor(name="plain")
        try:
            assert not isinstance(reactor, AsyncioReactor)
            assert reactor.mode == "threaded"
        finally:
            reactor.stop()

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown reactor mode"):
            Reactor(mode="gevent")


class TestAsyncioReactor:
    def test_lazy_loop_thread_single_thread_total(self):
        """No threads until the first wake; exactly one ever."""
        reactor = Reactor(mode="asyncio", name="lazy")
        try:
            assert reactor.thread_count == 0
            task = reactor.register(lambda: None, name="noop")
            assert reactor.thread_count == 0  # registration is free
            task.wake()
            assert wait_until(lambda: reactor.steps_executed >= 1, timeout=5)
            assert reactor.thread_count == 1
            # More tasks never mean more threads.
            for index in range(50):
                reactor.register(lambda: None, name=f"t{index}").wake()
            assert wait_until(lambda: reactor.steps_executed >= 51, timeout=5)
            assert reactor.thread_count == 1
        finally:
            reactor.stop()
        assert reactor.is_stopped
        assert wait_until(lambda: reactor.thread_count == 0, timeout=5)

    def test_steps_run_on_the_loop_thread(self):
        reactor = Reactor(mode="asyncio", name="affine")
        try:
            seen = []
            done = threading.Event()

            def step():
                seen.append(
                    (threading.current_thread().name, reactor.owns_current_thread)
                )
                done.set()
                return None

            reactor.register(step, name="probe").wake()
            assert done.wait(5)
            name, owned = seen[0]
            assert name.endswith("-aioloop")
            assert owned
            assert not reactor.owns_current_thread  # we are not the loop
        finally:
            reactor.stop()

    def test_task_is_serial_under_concurrent_wakes(self):
        reactor = Reactor(mode="asyncio", name="serial")
        try:
            state = {"active": 0, "overlaps": 0, "runs": 0}

            def step():
                state["active"] += 1
                if state["active"] > 1:
                    state["overlaps"] += 1
                state["active"] -= 1
                state["runs"] += 1
                return None

            task = reactor.register(step, name="hammered")
            wakers = [
                threading.Thread(target=lambda: [task.wake() for _ in range(50)])
                for _ in range(4)
            ]
            for waker in wakers:
                waker.start()
            for waker in wakers:
                waker.join()
            assert wait_until(lambda: state["runs"] >= 1, timeout=5)
            task.wake()
            assert wait_until(lambda: state["active"] == 0, timeout=5)
            assert state["overlaps"] == 0
        finally:
            reactor.stop()

    def test_wake_during_step_reruns_exactly_like_threaded(self):
        reactor = Reactor(mode="asyncio", name="rerun")
        try:
            runs = EventLog()
            started = threading.Event()
            release = threading.Event()

            def step():
                runs.append("run")
                if len(runs) == 1:
                    started.set()
                    release.wait(5)
                return None

            task = reactor.register(step, name="reentrant")
            task.wake()
            assert started.wait(5)
            task.wake()  # arrives mid-step: must lead to one more run
            release.set()
            assert runs.wait_for_count(2, timeout=5)
            time.sleep(0.05)
            assert len(runs) == 2  # coalesced, not unbounded
        finally:
            reactor.stop()

    def test_step_exception_does_not_kill_the_loop(self):
        reactor = Reactor(mode="asyncio", name="crashy")
        try:
            done = threading.Event()

            def bad_step():
                raise RuntimeError("boom")

            reactor.register(bad_step, name="bad").wake()
            assert wait_until(lambda: reactor.steps_executed >= 1, timeout=5)
            reactor.register(lambda: done.set(), name="good").wake()
            assert done.wait(5)
        finally:
            reactor.stop()

    def test_cancel_before_wake_never_runs_and_stays_thread_free(self):
        reactor = Reactor(mode="asyncio", name="cancel")
        try:
            ran = threading.Event()
            task = reactor.register(lambda: ran.set(), name="doomed")
            task.cancel()
            assert reactor.thread_count == 0  # cancel never starts the loop
            task.wake()
            time.sleep(0.05)
            assert not ran.is_set()
        finally:
            reactor.stop()

    def test_wake_after_stop_is_a_noop(self):
        reactor = Reactor(mode="asyncio", name="stopped")
        task = reactor.register(lambda: None, name="late")
        task.wake()
        assert wait_until(lambda: reactor.steps_executed >= 1, timeout=5)
        reactor.stop()
        task.wake()  # must not raise, must not run
        assert reactor.is_stopped


class TestAsyncioTimers:
    def test_realtime_deadline_fires(self):
        reactor = Reactor(mode="asyncio", name="rt")
        try:
            fired = threading.Event()
            task = reactor.register(lambda: fired.set(), name="timer")
            task.schedule_at(SystemClock().now() + 0.05)
            assert fired.wait(5)
        finally:
            reactor.stop()

    def test_manual_clock_advance_fires_timers_deterministically(self):
        """advance() to just before the deadline must not fire; crossing
        it must — the loop-timer mirror of the threaded notify path."""
        clock = ManualClock()
        reactor = Reactor(clock=clock, mode="asyncio", name="manual")
        try:
            fired = EventLog()
            task = reactor.register(lambda: fired.append(clock.now()), name="t")
            task.schedule_at(5.0)
            clock.advance(4.999)
            time.sleep(0.05)
            assert len(fired) == 0
            clock.advance(0.001)  # exactly 5.0: deadlines are inclusive
            assert fired.wait_for_count(1, timeout=5)
            assert fired.snapshot() == [5.0]
        finally:
            reactor.stop()

    def test_manual_clock_fires_multiple_deadlines_in_order(self):
        clock = ManualClock()
        reactor = Reactor(clock=clock, mode="asyncio", name="multi")
        try:
            fired = EventLog()
            for index, when in enumerate((3.0, 1.0, 2.0)):
                reactor.register(
                    lambda i=index: fired.append(i), name=f"t{index}"
                ).schedule_at(when)
            clock.advance(10.0)  # one advance crosses all three
            assert fired.wait_for_count(3, timeout=5)
            assert fired.snapshot() == [1, 2, 0]  # earliest deadline first
        finally:
            reactor.stop()

    def test_past_deadline_fires_without_any_advance(self):
        clock = ManualClock()
        clock.set(100.0)
        reactor = Reactor(clock=clock, mode="asyncio", name="due")
        try:
            fired = threading.Event()
            task = reactor.register(lambda: fired.set(), name="overdue")
            task.schedule_at(50.0)  # already due
            assert fired.wait(5)
        finally:
            reactor.stop()

    def test_step_returning_deadline_requeues_via_loop_timer(self):
        clock = ManualClock()
        reactor = Reactor(clock=clock, mode="asyncio", name="requeue")
        try:
            runs = EventLog()

            def step():
                runs.append(clock.now())
                if len(runs) < 3:
                    return clock.now() + 1.0
                return None

            reactor.register(step, name="periodic").wake()
            assert runs.wait_for_count(1, timeout=5)
            clock.advance(1.0)
            assert runs.wait_for_count(2, timeout=5)
            clock.advance(1.0)
            assert runs.wait_for_count(3, timeout=5)
            assert runs.snapshot() == [0.0, 1.0, 2.0]
        finally:
            reactor.stop()


class TestReferencesOnAsyncioReactor:
    """The reference stack end-to-end on the asyncio backend."""

    def test_pipelined_format_write_read_in_program_order(self, scenario):
        phone = scenario.add_phone("aio-phone", reactor_mode="asyncio")
        activity = scenario.start(phone, _PlainActivity)
        tag = scenario.add_tag(formatted=False)
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        assert isinstance(phone.reactor, AsyncioReactor)
        log = EventLog()
        reference.format(on_formatted=lambda r: log.append("formatted"))
        reference.write("hello", on_written=lambda r: log.append("written"))
        reference.read(on_read=lambda r: log.append(("read", r.cached)))
        assert log.wait_for_count(3, timeout=10)
        assert log.snapshot() == ["formatted", "written", ("read", "hello")]

    def test_absent_tag_never_starves_present_tag(self, scenario):
        phone = scenario.add_phone("aio-phone", reactor_mode="asyncio")
        activity = scenario.start(phone, _PlainActivity)
        absent = text_tag("absent")
        present = text_tag("present")
        scenario.put(present, phone)
        ref_absent = make_reference(activity, absent, phone)
        ref_present = make_reference(activity, present, phone)
        done = EventLog()
        ref_absent.write("never-lands", timeout=30.0)
        for index in range(20):
            ref_present.write(
                f"w{index}", on_written=lambda r, i=index: done.append(i)
            )
        assert done.wait_for_count(20, timeout=5)
        assert done.snapshot() == list(range(20))
        assert ref_absent.pending_count == 1
        assert present.read_ndef()[0].payload == b"w19"

    def test_operation_timeout_flows_through_loop_timers(self, scenario):
        phone = scenario.add_phone("aio-phone", reactor_mode="asyncio")
        activity = scenario.start(phone, _PlainActivity)
        tag = text_tag("away")  # never enters the field
        reference = make_reference(activity, tag, phone)
        failed = threading.Event()
        reference.read(on_failed=lambda r: failed.set(), timeout=0.1)
        assert failed.wait(5)
