"""Tests for the tag reference: queueing, retries, ordering, timeouts.

These encode the paper's section 3.2 semantics directly:
asynchronous-only I/O, silent retry while disconnected, in-order
processing, timeout -> failure listener, listeners on the main thread,
cached content for synchronous access.
"""

import threading

import pytest

from repro.concurrent import EventLog, wait_until
from repro.core.operations import OperationOutcome
from repro.errors import MorenaError, ReferenceStoppedError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.link import FlakyThenGoodLink, ScriptedLink
from repro.tags.factory import make_tag

from tests.conftest import TEXT_TYPE, make_reference, text_message, text_tag


@pytest.fixture
def tag():
    return text_tag("initial")


@pytest.fixture
def ref(scenario, phone, activity, tag):
    scenario.put(tag, phone)
    return make_reference(activity, tag, phone)


class TestRead:
    def test_read_invokes_success_listener_with_reference(self, ref):
        log = EventLog()
        ref.read(on_read=lambda r: log.append(r))
        assert log.wait_for_count(1)
        assert log.snapshot() == [ref]
        assert ref.cached == "initial"

    def test_read_updates_cached_message(self, ref):
        ref.read()
        assert wait_until(lambda: ref.cached_message == text_message("initial"))
        assert ref.has_cache

    def test_listener_runs_on_main_thread(self, ref, phone):
        log = EventLog()
        ref.read(on_read=lambda r: log.append(threading.current_thread().name))
        assert log.wait_for_count(1)
        assert log.snapshot() == [f"looper-{phone.name}-main"]

    def test_statements_after_call_run_before_listener(self, ref, phone):
        """Paper 3.2: code after an async call usually runs before listeners."""
        log = EventLog()

        def on_main():
            ref.read(on_read=lambda r: log.append("listener"))
            log.append("after-call")

        phone.main_looper.post(on_main)
        assert log.wait_for_count(2)
        assert log.snapshot() == ["after-call", "listener"]

    def test_listener_nesting_synchronizes(self, ref, tag):
        """Paper 3.2: synchronization happens by nesting listeners."""
        log = EventLog()

        def after_write(r):
            r.read(on_read=lambda r2: log.append(("read", r2.cached)))

        ref.write("nested", on_written=after_write)
        assert log.wait_for_count(1)
        assert log.snapshot() == [("read", "nested")]


class TestWrite:
    def test_write_reaches_tag(self, ref, tag):
        log = EventLog()
        ref.write("updated", on_written=lambda r: log.append("ok"))
        assert log.wait_for_count(1)
        assert tag.read_ndef()[0].payload == b"updated"

    def test_write_updates_cache_with_original_object(self, ref):
        log = EventLog()
        ref.write("cached-value", on_written=lambda r: log.append(r.cached))
        assert log.wait_for_count(1)
        assert log.snapshot() == ["cached-value"]

    def test_write_converts_at_call_time(self, ref, tag):
        """The value written is the value at call time."""
        value = ["mutable"]
        log = EventLog()
        ref.write(str(value), on_written=lambda r: log.append("done"))
        value.append("changed later")
        assert log.wait_for_count(1)
        assert b"changed later" not in tag.read_ndef()[0].payload

    def test_operation_object_tracks_outcome(self, ref):
        operation = ref.write("x")
        assert wait_until(lambda: operation.outcome is OperationOutcome.SUCCEEDED)
        assert operation.attempts >= 1


class TestDecouplingInTime:
    def test_write_while_disconnected_completes_on_reconnect(
        self, scenario, phone, ref, tag
    ):
        scenario.take(tag, phone)
        log = EventLog()
        ref.write("late", on_written=lambda r: log.append("written"))
        assert not log.wait_for_count(1, timeout=0.1)  # still queued
        assert ref.pending_count == 1
        scenario.put(tag, phone)
        assert log.wait_for_count(1)
        assert tag.read_ndef()[0].payload == b"late"

    def test_multiple_writes_batch_until_reconnect(self, scenario, phone, ref, tag):
        scenario.take(tag, phone)
        log = EventLog()
        for index in range(5):
            ref.write(f"value-{index}", on_written=lambda r: log.append("w"))
        assert ref.pending_count == 5
        scenario.put(tag, phone)
        assert log.wait_for_count(5)
        assert tag.read_ndef()[0].payload == b"value-4"

    def test_transient_link_failures_retry_silently(
        self, scenario, phone, activity
    ):
        tag = text_tag("flaky")
        phone.port.set_link(FlakyThenGoodLink(3))
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        log = EventLog()
        failures = EventLog()
        ref.read(
            on_read=lambda r: log.append(r.cached),
            on_failed=lambda r: failures.append("failed"),
        )
        assert log.wait_for_count(1, timeout=5)
        assert log.snapshot() == ["flaky"]
        assert len(failures) == 0
        assert ref.attempts >= 4  # three tears + one success

    def test_operation_survives_mid_queue_disconnect(
        self, scenario, phone, ref, tag
    ):
        """Tag leaves between two queued writes; both eventually land."""
        log = EventLog()
        ref.write("first", on_written=lambda r: log.append("first"))
        assert log.wait_for_count(1)
        scenario.take(tag, phone)
        ref.write("second", on_written=lambda r: log.append("second"))
        scenario.put(tag, phone)
        assert log.wait_for_count(2)
        assert tag.read_ndef()[0].payload == b"second"


class TestOrdering:
    def test_operations_processed_in_scheduling_order(self, ref, tag):
        log = EventLog()
        for index in range(10):
            ref.write(f"v{index}", on_written=lambda r, i=index: log.append(i))
        assert log.wait_for_count(10)
        assert log.snapshot() == list(range(10))

    def test_read_sees_preceding_write(self, ref):
        log = EventLog()
        ref.write("before-read")
        ref.read(on_read=lambda r: log.append(r.cached))
        assert log.wait_for_count(1)
        assert log.snapshot() == ["before-read"]

    def test_format_then_write_initializes_blank_tag(
        self, scenario, phone, activity
    ):
        blank = make_tag(formatted=False)
        scenario.put(blank, phone)
        ref = make_reference(activity, blank, phone)
        log = EventLog()
        ref.format()
        ref.write("fresh", on_written=lambda r: log.append("ok"))
        assert log.wait_for_count(1)
        assert blank.is_ndef_formatted
        assert blank.read_ndef()[0].payload == b"fresh"


class TestTimeouts:
    def test_timeout_fires_failure_listener(self, scenario, phone, ref, tag):
        scenario.take(tag, phone)
        log = EventLog()
        ref.write("never", on_failed=lambda r: log.append("timeout"), timeout=0.15)
        assert log.wait_for_count(1, timeout=3)
        assert ref.pending_count == 0
        assert ref.timeouts == 1

    def test_timeout_of_queued_operation_behind_head(self, scenario, phone, ref, tag):
        scenario.take(tag, phone)
        log = EventLog()
        ref.write("head", on_failed=lambda r: log.append("head-failed"), timeout=5.0)
        ref.write("tail", on_failed=lambda r: log.append("tail-failed"), timeout=0.1)
        assert log.wait_for(lambda e: "tail-failed" in e, timeout=3)
        assert "head-failed" not in log.snapshot()
        assert ref.pending_count == 1  # the head is still queued

    def test_success_after_timeout_of_earlier_op(self, scenario, phone, ref, tag):
        scenario.take(tag, phone)
        log = EventLog()
        ref.write("doomed", on_failed=lambda r: log.append("t"), timeout=0.1)
        ref.write("survives", on_written=lambda r: log.append("ok"), timeout=10.0)
        assert log.wait_for(lambda e: "t" in e, timeout=3)
        scenario.put(tag, phone)
        assert log.wait_for(lambda e: "ok" in e, timeout=3)
        assert tag.read_ndef()[0].payload == b"survives"

    def test_zero_timeout_rejected(self, ref):
        with pytest.raises(MorenaError):
            ref.read(timeout=0)


class TestPermanentFailures:
    def test_capacity_error_fails_immediately_without_retry(
        self, scenario, phone, activity
    ):
        small = make_tag("MIFARE_ULTRALIGHT")
        scenario.put(small, phone)
        ref = make_reference(activity, small, phone)
        log = EventLog()
        ref.write("x" * 500, on_failed=lambda r: log.append("failed"), timeout=30.0)
        assert log.wait_for_count(1, timeout=3)
        assert ref.permanent_failures == 1

    def test_read_only_tag_fails_writes_immediately(
        self, scenario, phone, activity
    ):
        tag = text_tag("locked")
        tag.make_read_only()
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        log = EventLog()
        operation = ref.write("nope", on_failed=lambda r: log.append("failed"))
        assert log.wait_for_count(1, timeout=3)
        assert operation.outcome is OperationOutcome.FAILED

    def test_converter_error_settles_before_enqueue(self, ref):
        """A write whose object cannot be converted fails synchronously-ish."""
        from repro.core.converters import ObjectToNdefMessageConverter
        from repro.errors import ConverterError

        class Rejecting(ObjectToNdefMessageConverter):
            def convert(self, obj):
                raise ConverterError("nope")

        ref._write_converter = Rejecting()
        log = EventLog()
        operation = ref.write("anything", on_failed=lambda r: log.append("failed"))
        assert operation.outcome is OperationOutcome.FAILED
        assert log.wait_for_count(1)
        assert ref.pending_count == 0

    def test_permanent_failure_does_not_block_queue(self, scenario, phone, activity):
        small = make_tag("MIFARE_ULTRALIGHT")
        scenario.put(small, phone)
        ref = make_reference(activity, small, phone)
        log = EventLog()
        ref.write("y" * 500, on_failed=lambda r: log.append("big-failed"))
        ref.write("ok", on_written=lambda r: log.append("small-ok"))
        assert log.wait_for_count(2, timeout=3)
        assert small.read_ndef()[0].payload == b"ok"


class TestConnectivity:
    def test_is_connected_tracks_field(self, scenario, phone, ref, tag):
        assert ref.is_connected
        scenario.take(tag, phone)
        assert not ref.is_connected

    def test_connectivity_listeners_fire_on_changes(self, scenario, phone, ref, tag):
        log = EventLog()
        ref.add_connectivity_listener(lambda r, connected: log.append(connected))
        scenario.take(tag, phone)
        scenario.put(tag, phone)
        assert log.wait_for_count(2)
        assert log.snapshot() == [False, True]

    def test_removed_connectivity_listener_is_silent(self, scenario, phone, ref, tag):
        log = EventLog()
        listener = lambda r, c: log.append(c)  # noqa: E731
        ref.add_connectivity_listener(listener)
        ref.remove_connectivity_listener(listener)
        scenario.take(tag, phone)
        assert phone.sync()
        assert len(log) == 0


class TestStop:
    def test_stop_cancels_pending(self, scenario, phone, ref, tag):
        scenario.take(tag, phone)
        operation = ref.write("never")
        ref.stop()
        assert ref.is_stopped
        assert operation.outcome is OperationOutcome.CANCELLED
        assert ref.pending_count == 0

    def test_stop_notify_pending_fires_failure_listeners(
        self, scenario, phone, ref, tag
    ):
        scenario.take(tag, phone)
        log = EventLog()
        ref.write("never", on_failed=lambda r: log.append("cancelled"))
        ref.stop(notify_pending=True)
        assert log.wait_for_count(1)

    def test_stop_without_notify_is_silent(self, scenario, phone, ref, tag):
        scenario.take(tag, phone)
        log = EventLog()
        ref.write("never", on_failed=lambda r: log.append("cancelled"))
        ref.stop()
        assert phone.sync()
        assert len(log) == 0

    def test_enqueue_after_stop_rejected(self, ref):
        ref.stop()
        with pytest.raises(ReferenceStoppedError):
            ref.read()

    def test_stop_is_idempotent(self, ref):
        ref.stop()
        ref.stop()


class TestRawOperations:
    def test_read_raw_updates_only_message_cache(self, ref, tag):
        log = EventLog()
        ref.read(on_read=lambda r: log.append("primed"))
        assert log.wait_for_count(1)
        tag.write_ndef(text_message("changed behind our back"))
        ref.read_raw(on_read=lambda r: log.append("raw"))
        assert log.wait_for_count(2)
        assert ref.cached == "initial"  # object cache untouched
        assert ref.cached_message == text_message("changed behind our back")

    def test_write_raw_bypasses_converter(self, ref, tag):
        log = EventLog()
        message = NdefMessage([mime_record("x/y", b"raw bytes")])
        ref.write_raw(message, on_written=lambda r: log.append("ok"))
        assert log.wait_for_count(1)
        assert tag.read_ndef() == message
        assert ref.cached_message == message

    def test_write_raw_requires_message(self, ref):
        with pytest.raises(MorenaError):
            ref.write_raw("not a message")

    def test_raw_ops_share_the_ordered_queue(self, scenario, phone, ref, tag):
        scenario.take(tag, phone)
        log = EventLog()
        ref.write("converted", on_written=lambda r: log.append("a"))
        ref.write_raw(text_message("raw"), on_written=lambda r: log.append("b"))
        scenario.put(tag, phone)
        assert log.wait_for_count(2)
        assert log.snapshot() == ["a", "b"]
        assert tag.read_ndef() == text_message("raw")


class TestLock:
    def test_make_read_only_async(self, ref, tag):
        log = EventLog()
        ref.make_read_only(on_locked=lambda r: log.append("locked"))
        assert log.wait_for_count(1)
        assert not tag.is_writable

    def test_write_after_lock_fails_permanently(self, ref, tag):
        log = EventLog()
        ref.make_read_only()
        ref.write("nope", on_failed=lambda r: log.append("denied"))
        assert log.wait_for_count(1)
