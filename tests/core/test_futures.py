"""Tests for the futures facade over the listener API."""

import pytest

from repro.core.futures import (
    OperationFuture,
    OperationTimeoutError,
    lock_future,
    read_future,
    write_future,
)

from tests.conftest import make_reference, text_tag


@pytest.fixture
def ref(scenario, phone, activity):
    tag = text_tag("future-content")
    scenario.put(tag, phone)
    return make_reference(activity, tag, phone)


class TestBlockingStyle:
    def test_read_result(self, ref):
        assert read_future(ref).result(timeout=5) == "future-content"

    def test_write_result_returns_reference(self, ref):
        assert write_future(ref, "written").result(timeout=5) is ref
        assert ref.tag.simulated.read_ndef()[0].payload == b"written"

    def test_lock_result(self, ref):
        lock_future(ref).result(timeout=5)
        assert not ref.tag.simulated.is_writable

    def test_failure_raises(self, scenario, phone, activity):
        tag = text_tag("away")  # never in the field
        reference = make_reference(activity, tag, phone)
        future = write_future(reference, "never", timeout=0.15)
        with pytest.raises(OperationTimeoutError):
            future.result(timeout=5)
        assert future.done and not future.succeeded

    def test_result_timeout_while_pending(self, scenario, phone, activity):
        tag = text_tag("away")
        reference = make_reference(activity, tag, phone)
        future = write_future(reference, "pending", timeout=30)
        with pytest.raises(TimeoutError):
            future.result(timeout=0.05)


class TestChainingStyle:
    def test_then_transforms_value(self, ref):
        future = read_future(ref).then(str.upper)
        assert future.result(timeout=5) == "FUTURE-CONTENT"

    def test_then_chain_of_operations(self, ref):
        # `then` callbacks run on the main thread, so they must not block;
        # hand the inner future out and await it from the test thread.
        inner_future = write_future(ref, "first").then(
            lambda r: read_future(r)
        ).result(timeout=5)
        assert inner_future.result(timeout=5) == "first"

    def test_exception_in_then_fails_chain(self, ref):
        def boom(_value):
            raise ValueError("kaboom")

        future = read_future(ref).then(boom)
        with pytest.raises(ValueError):
            future.result(timeout=5)

    def test_failure_propagates_through_then(self, scenario, phone, activity):
        tag = text_tag("away")
        reference = make_reference(activity, tag, phone)
        future = write_future(reference, "x", timeout=0.15).then(lambda r: "unreached")
        with pytest.raises(OperationTimeoutError):
            future.result(timeout=5)


class TestCallbacks:
    def test_done_callback_after_settlement(self, ref):
        future = read_future(ref)
        future.result(timeout=5)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.succeeded))
        assert seen == [True]

    def test_done_callback_before_settlement(self, ref):
        from repro.concurrent import EventLog

        log = EventLog()
        future = read_future(ref)
        future.add_done_callback(lambda f: log.append(f.succeeded))
        assert log.wait_for_count(1, timeout=5)
        assert log.snapshot() == [True]

    def test_settlement_is_once_only(self):
        future = OperationFuture()
        future._succeed("first")
        future._fail(ValueError("ignored"))
        assert future.result(timeout=0) == "first"

    def test_operation_handle_exposed(self, ref):
        future = write_future(ref, "x")
        assert future.operation is not None
        future.result(timeout=5)
        from repro.core.operations import OperationOutcome

        assert future.operation.outcome is OperationOutcome.SUCCEEDED
