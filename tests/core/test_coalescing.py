"""Write coalescing and read dedup on the tag reference.

While a tag is out of range, consecutive coalescible writes collapse to
the newest payload; superseded writes settle success in FIFO order when
the surviving write lands. Reads (and any non-write operation) fence the
merging, raw writes never coalesce, and overlapping pending reads share
one physical read. Default is off -- ``Thing.save_async`` opts in.
"""

import pytest

from repro.concurrent import EventLog, wait_until
from repro.core.operations import OperationOutcome

from tests.conftest import make_reference, text_tag


@pytest.fixture
def tag():
    return text_tag("seed")


@pytest.fixture
def ref(activity, tag, phone):
    """A coalescing reference whose tag starts OUT of the field."""
    return make_reference(activity, tag, phone, coalesce_writes=True)


class TestWriteCoalescing:
    def test_redundant_writes_collapse_to_one_physical_write(
        self, scenario, phone, activity, ref, tag
    ):
        done = EventLog()
        for index in range(6):
            ref.write(
                f"v{index}",
                on_written=lambda _r, i=index: done.append(i),
                timeout=30.0,
            )
        assert ref.pending_count == 6  # logically all still pending
        assert ref.coalesced_writes == 5
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert done.wait_for_count(6)
        assert phone.port.write_attempts - writes_before == 1
        assert tag.read_ndef()[0].payload == b"v5"  # newest payload won
        assert done.snapshot() == list(range(6))  # FIFO settlement

    def test_coalescing_off_by_default(self, scenario, phone, activity, tag):
        plain = make_reference(activity, tag, phone)
        done = EventLog()
        for index in range(4):
            plain.write(f"v{index}", on_written=lambda _r: done.append(1), timeout=30.0)
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert done.wait_for_count(4)
        assert phone.port.write_attempts - writes_before == 4
        assert plain.coalesced_writes == 0

    def test_per_operation_override_on_plain_reference(
        self, scenario, phone, activity, tag
    ):
        plain = make_reference(activity, tag, phone)
        done = EventLog()
        plain.write("a", on_written=lambda _r: done.append("a"), timeout=30.0, coalesce=True)
        plain.write("b", on_written=lambda _r: done.append("b"), timeout=30.0, coalesce=True)
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert done.wait_for_count(2)
        assert phone.port.write_attempts - writes_before == 1
        assert done.snapshot() == ["a", "b"]

    def test_read_is_a_fence(self, scenario, phone, activity, ref, tag):
        """W1 | R | W2 W3: the read must observe W1, so only W2/W3 merge."""
        log = EventLog()
        ref.write("v1", on_written=lambda _r: log.append("w1"), timeout=30.0)
        ref.read(on_read=lambda r: log.append("read"), timeout=30.0)
        ref.write("v2", on_written=lambda _r: log.append("w2"), timeout=30.0)
        ref.write("v3", on_written=lambda _r: log.append("w3"), timeout=30.0)
        assert ref.coalesced_writes == 1  # only w2 superseded
        writes_before = phone.port.write_attempts
        reads_before = phone.port.read_attempts
        scenario.put(tag, phone)
        assert log.wait_for_count(4)
        assert phone.port.write_attempts - writes_before == 2  # v1 and v3
        assert phone.port.read_attempts - reads_before == 1  # read really ran
        assert log.snapshot() == ["w1", "read", "w2", "w3"]
        assert tag.read_ndef()[0].payload == b"v3"

    def test_raw_writes_never_coalesce(self, scenario, phone, activity, ref, tag):
        from tests.conftest import text_message

        done = EventLog()
        ref.write_raw(text_message("r1"), on_written=lambda _r: done.append(1), timeout=30.0)
        ref.write_raw(text_message("r2"), on_written=lambda _r: done.append(2), timeout=30.0)
        assert ref.coalesced_writes == 0
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert done.wait_for_count(2)
        assert phone.port.write_attempts - writes_before == 2

    def test_raw_write_fences_coalescible_writes(
        self, scenario, phone, activity, ref, tag
    ):
        from tests.conftest import text_message

        done = EventLog()
        ref.write("v1", on_written=lambda _r: done.append("w1"), timeout=30.0)
        ref.write_raw(text_message("raw"), on_written=lambda _r: done.append("raw"), timeout=30.0)
        ref.write("v2", on_written=lambda _r: done.append("w2"), timeout=30.0)
        assert ref.coalesced_writes == 0  # the raw write blocked the merge
        scenario.put(tag, phone)
        assert done.wait_for_count(3)
        assert done.snapshot() == ["w1", "raw", "w2"]


class TestCoalescedCancellation:
    def test_cancel_superseded_write_is_silent(self, scenario, phone, activity, ref, tag):
        done = EventLog()
        first = ref.write("v1", on_written=lambda _r: done.append("w1"), timeout=30.0)
        ref.write("v2", on_written=lambda _r: done.append("w2"), timeout=30.0)
        assert ref.cancel(first) is True
        assert first.outcome is OperationOutcome.CANCELLED
        scenario.put(tag, phone)
        assert done.wait_for_count(1)
        assert done.snapshot() == ["w2"]
        assert tag.read_ndef()[0].payload == b"v2"

    def test_cancel_survivor_revives_newest_superseded(
        self, scenario, phone, activity, ref, tag
    ):
        done = EventLog()
        ref.write("v1", on_written=lambda _r: done.append("w1"), timeout=30.0)
        ref.write("v2", on_written=lambda _r: done.append("w2"), timeout=30.0)
        survivor = ref.write("v3", on_written=lambda _r: done.append("w3"), timeout=30.0)
        assert ref.cancel(survivor) is True
        assert ref.pending_count == 2  # v1 and v2 are still pending
        scenario.put(tag, phone)
        assert done.wait_for_count(2)
        assert done.snapshot() == ["w1", "w2"]
        assert tag.read_ndef()[0].payload == b"v2"  # newest *remaining* payload

    def test_cancel_all_counts_superseded(self, ref):
        ref.write("v1", timeout=30.0)
        ref.write("v2", timeout=30.0)
        ref.write("v3", timeout=30.0)
        assert ref.cancel_all() == 3

    def test_stop_notifies_superseded_failure_listeners(
        self, scenario, phone, activity, ref
    ):
        failed = EventLog()
        ref.write("v1", on_failed=lambda _r: failed.append("f1"), timeout=30.0)
        ref.write("v2", on_failed=lambda _r: failed.append("f2"), timeout=30.0)
        ref.stop(notify_pending=True)
        assert failed.wait_for_count(2)
        assert failed.snapshot() == ["f1", "f2"]


class TestCoalescedTimeouts:
    def test_superseded_write_times_out_individually(
        self, scenario, phone, activity, ref, tag
    ):
        log = EventLog()
        ref.write("v1", on_failed=lambda _r: log.append("t1"), timeout=0.15)
        ref.write("v2", on_written=lambda _r: log.append("w2"), timeout=30.0)
        assert log.wait_for(lambda e: "t1" in e, timeout=5)
        assert ref.timeouts == 1
        scenario.put(tag, phone)
        assert log.wait_for(lambda e: "w2" in e, timeout=5)
        assert tag.read_ndef()[0].payload == b"v2"

    def test_expiring_survivor_revives_superseded_chain(
        self, scenario, phone, activity, ref, tag
    ):
        log = EventLog()
        ref.write("v1", on_written=lambda _r: log.append("w1"), timeout=30.0)
        ref.write("v2", on_failed=lambda _r: log.append("t2"), timeout=0.15)
        assert log.wait_for(lambda e: "t2" in e, timeout=5)
        scenario.put(tag, phone)
        assert log.wait_for(lambda e: "w1" in e, timeout=5)
        assert tag.read_ndef()[0].payload == b"v1"


class TestReadDedup:
    def test_overlapping_reads_share_one_physical_read(
        self, scenario, phone, activity, ref, tag
    ):
        log = EventLog()
        for index in range(5):
            ref.read(on_read=lambda r, i=index: log.append(i), timeout=30.0)
        reads_before = phone.port.read_attempts
        scenario.put(tag, phone)
        assert log.wait_for_count(5)
        assert phone.port.read_attempts - reads_before == 1
        assert ref.deduped_reads == 4
        assert log.snapshot() == list(range(5))  # FIFO fan-out

    def test_write_fences_read_dedup(self, scenario, phone, activity, ref, tag):
        """R1 | W | R2: R2 must observe the write, so it cannot share R1."""
        log = EventLog()
        ref.read(on_read=lambda r: log.append("r1"), timeout=30.0)
        ref.write("new", on_written=lambda _r: log.append("w"), timeout=30.0)
        ref.read(on_read=lambda r: log.append("r2"), timeout=30.0)
        reads_before = phone.port.read_attempts
        scenario.put(tag, phone)
        assert log.wait_for_count(3)
        assert phone.port.read_attempts - reads_before == 2  # R2 re-read after W
        assert ref.deduped_reads == 0
        assert log.snapshot() == ["r1", "w", "r2"]
        assert ref.cached == "new"  # the fenced read observed the write

    def test_raw_and_converted_reads_do_not_merge(
        self, scenario, phone, activity, ref, tag
    ):
        log = EventLog()
        ref.read(on_read=lambda r: log.append("converted"), timeout=30.0)
        ref.read_raw(on_read=lambda r: log.append("raw"), timeout=30.0)
        reads_before = phone.port.read_attempts
        scenario.put(tag, phone)
        assert log.wait_for_count(2)
        assert phone.port.read_attempts - reads_before == 2
        assert ref.deduped_reads == 0


class TestProtocolMergeHook:
    """write_raw(..., merge_key=...): the protocol layer's own merge rule."""

    def test_same_key_raw_writes_collapse_to_newest(
        self, scenario, phone, activity, ref, tag
    ):
        from tests.conftest import text_message

        done = EventLog()
        first = ref.write_raw(
            text_message("r1"),
            on_written=lambda _r: done.append(1),
            timeout=30.0,
            merge_key="lease-renew:a",
        )
        second = ref.write_raw(
            text_message("r2"),
            on_written=lambda _r: done.append(2),
            timeout=30.0,
            merge_key="lease-renew:a",
        )
        assert not first.merged and second.merged
        assert ref.protocol_merges == 1
        assert ref.pending_count == 2  # logically both still pending
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert done.wait_for_count(2)
        assert phone.port.write_attempts - writes_before == 1
        assert tag.read_ndef()[0].payload == b"r2"  # newest message won
        assert done.snapshot() == [1, 2]  # FIFO settlement

    def test_different_keys_never_merge(self, scenario, phone, activity, ref, tag):
        from tests.conftest import text_message

        done = EventLog()
        ref.write_raw(text_message("a"), on_written=lambda _r: done.append(1),
                      timeout=30.0, merge_key="lease-renew:a")
        ref.write_raw(text_message("b"), on_written=lambda _r: done.append(2),
                      timeout=30.0, merge_key="lease-renew:b")
        assert ref.protocol_merges == 0
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert done.wait_for_count(2)
        assert phone.port.write_attempts - writes_before == 2

    def test_keyless_raw_write_is_a_fence(self, scenario, phone, activity, ref, tag):
        """Renew | guarded-data | renew: the data write blocks the merge."""
        from tests.conftest import text_message

        done = EventLog()
        ref.write_raw(text_message("renew1"), on_written=lambda _r: done.append("n1"),
                      timeout=30.0, merge_key="lease-renew:a")
        ref.write_raw(text_message("data"), on_written=lambda _r: done.append("d"),
                      timeout=30.0)
        ref.write_raw(text_message("renew2"), on_written=lambda _r: done.append("n2"),
                      timeout=30.0, merge_key="lease-renew:a")
        assert ref.protocol_merges == 0
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert done.wait_for_count(3)
        assert phone.port.write_attempts - writes_before == 3
        assert done.snapshot() == ["n1", "d", "n2"]
        assert tag.read_ndef()[0].payload == b"renew2"

    def test_read_is_a_fence_for_merging(self, scenario, phone, activity, ref, tag):
        from tests.conftest import text_message

        done = EventLog()
        ref.write_raw(text_message("r1"), on_written=lambda _r: done.append("w1"),
                      timeout=30.0, merge_key="k")
        ref.read_raw(on_read=lambda r: done.append("read"), timeout=30.0)
        ref.write_raw(text_message("r2"), on_written=lambda _r: done.append("w2"),
                      timeout=30.0, merge_key="k")
        assert ref.protocol_merges == 0
        scenario.put(tag, phone)
        assert done.wait_for_count(3)
        assert done.snapshot() == ["w1", "read", "w2"]

    def test_message_factory_builds_at_transmission_time(
        self, scenario, phone, activity, ref, tag
    ):
        from tests.conftest import text_message

        calls = EventLog()

        def factory():
            calls.append("built")
            return text_message("deferred")

        done = EventLog()
        ref.write_raw(message_factory=factory, on_written=lambda _r: done.append(1),
                      timeout=30.0)
        assert calls.snapshot() == []  # nothing built while the tag is away
        scenario.put(tag, phone)
        assert done.wait_for_count(1)
        assert calls.snapshot() == ["built"]
        assert tag.read_ndef()[0].payload == b"deferred"
        assert ref.cached_message[0].payload == b"deferred"  # cache refreshed

    def test_write_raw_validates_message_xor_factory(self, activity, tag, phone):
        from repro.errors import MorenaError
        from tests.conftest import text_message

        plain = make_reference(activity, tag, phone)
        with pytest.raises(MorenaError):
            plain.write_raw()
        with pytest.raises(MorenaError):
            plain.write_raw(text_message("x"), message_factory=lambda: None)

    def test_merged_write_adopts_survivor_deadline(
        self, scenario, phone, activity, ref, tag
    ):
        """A merge moves only the deadline; the reactor's timer heap must
        adopt it so the survivor's (shorter) timeout fires while away."""
        from tests.conftest import text_message

        log = EventLog()
        ref.write_raw(text_message("r1"), on_written=lambda _r: log.append("w1"),
                      timeout=30.0, merge_key="k")
        survivor = ref.write_raw(
            text_message("r2"),
            on_failed=lambda _r: log.append("t2"),
            timeout=0.15,
            merge_key="k",
        )
        assert survivor.merged
        # No field event, no enqueue: only the adopted deadline can fire this.
        assert log.wait_for(lambda e: "t2" in e, timeout=5)
        assert survivor.outcome is OperationOutcome.TIMED_OUT
        # The superseded (older, longer-lived) write was revived and lands.
        scenario.put(tag, phone)
        assert log.wait_for(lambda e: "w1" in e, timeout=5)
        assert tag.read_ndef()[0].payload == b"r1"


class TestThingSaveCoalescing:
    def test_save_async_coalesces_by_default(self, scenario):
        from repro.concurrent import EventLog as Log
        from repro.things.thing import Thing
        from repro.things.activity import ThingActivity

        class Counter(Thing):
            value: int

            def __init__(self, activity, value=0):
                super().__init__(activity)
                self.value = value

        class CounterActivity(ThingActivity):
            THING_CLASS = Counter

            def on_create(self):
                self.empties = Log()

            def when_discovered_empty(self, empty):
                self.empties.append(empty)

        from repro.tags.factory import make_tag

        phone = scenario.add_phone("counter-phone")
        app = scenario.start(phone, CounterActivity)
        tag = make_tag()
        scenario.put(tag, phone)
        assert app.empties.wait_for_count(1)
        counter = Counter(app, value=0)
        saved = Log()
        app.empties.snapshot()[0].initialize(counter, on_saved=lambda t: saved.append(t))
        assert saved.wait_for_count(1)

        scenario.take(tag, phone)
        assert wait_until(lambda: not counter.reference.is_connected)
        writes_before = phone.port.write_attempts
        done = Log()
        for step in range(1, 9):
            counter.value = step
            counter.save_async(on_saved=lambda t, s=step: done.append(s))
        scenario.put(tag, phone)
        assert done.wait_for_count(8)
        assert phone.port.write_attempts - writes_before == 1
        assert done.snapshot() == list(range(1, 9))
        assert b'"value": 8' in tag.read_ndef()[0].payload

    def test_save_async_coalesce_false_writes_each_state(self, scenario):
        from repro.concurrent import EventLog as Log
        from repro.things.thing import Thing
        from repro.things.activity import ThingActivity
        from repro.tags.factory import make_tag

        class Gauge(Thing):
            value: int

            def __init__(self, activity, value=0):
                super().__init__(activity)
                self.value = value

        class GaugeActivity(ThingActivity):
            THING_CLASS = Gauge

            def on_create(self):
                self.empties = Log()

            def when_discovered_empty(self, empty):
                self.empties.append(empty)

        phone = scenario.add_phone("gauge-phone")
        app = scenario.start(phone, GaugeActivity)
        tag = make_tag()
        scenario.put(tag, phone)
        assert app.empties.wait_for_count(1)
        gauge = Gauge(app)
        saved = Log()
        app.empties.snapshot()[0].initialize(gauge, on_saved=lambda t: saved.append(t))
        assert saved.wait_for_count(1)

        scenario.take(tag, phone)
        assert wait_until(lambda: not gauge.reference.is_connected)
        writes_before = phone.port.write_attempts
        done = Log()
        for step in range(3):
            gauge.value = step
            gauge.save_async(on_saved=lambda t: done.append(1), coalesce=False)
        scenario.put(tag, phone)
        assert done.wait_for_count(3)
        assert phone.port.write_attempts - writes_before == 3


class TestBatchedWindowFences:
    """Coalescing composes with the per-port batched tap window: merges
    still collapse, and a foreign reference's fence (a raw write) is
    never reordered against the merged survivor."""

    def test_foreign_raw_fence_holds_its_slot_in_a_batched_window(
        self, scenario, phone, activity, ref, tag
    ):
        from repro.android.nfc.tech import Tag
        from repro.core.reference import TagReference
        from tests.conftest import string_converters, text_message

        read_conv, write_conv = string_converters()
        other = TagReference(Tag(tag, phone.port), activity, read_conv, write_conv)

        order = EventLog()
        other.write_raw(
            text_message("protocol-record"),
            on_written=lambda _r: order.append("fence"),
        )
        for index in range(6):
            ref.write(f"v{index}", on_written=lambda _r, i=index: order.append(i))

        writes_before = phone.port.write_attempts
        connects_before = phone.port.connects
        scenario.put(tag, phone)
        assert order.wait_for_count(7)
        # The fence first (older), then the six coalesced settlements in
        # FIFO order -- and only two physical writes in one connect round.
        assert order.snapshot() == ["fence", 0, 1, 2, 3, 4, 5]
        assert phone.port.write_attempts - writes_before == 2
        assert phone.port.connects - connects_before == 1
        assert tag.read_ndef()[0].payload == b"v5"
