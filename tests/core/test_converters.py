"""Unit tests for the data-conversion strategies."""

import pytest

from repro.core.converters import (
    IdentityConverters,
    JsonToObjectConverter,
    NdefMessageToStringConverter,
    ObjectToJsonConverter,
    StringToNdefMessageConverter,
)
from repro.errors import ConverterError, NdefEncodeError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record


class TestStringConverters:
    def test_roundtrip(self):
        to_ndef = StringToNdefMessageConverter("x/y")
        to_str = NdefMessageToStringConverter()
        assert to_str.convert(to_ndef.convert("héllo")) == "héllo"

    def test_write_converter_stamps_mime_type(self):
        message = StringToNdefMessageConverter("app/demo").convert("x")
        assert message[0].type == b"app/demo"

    def test_none_becomes_empty_string(self):
        message = StringToNdefMessageConverter("x/y").convert(None)
        assert message[0].payload == b""

    def test_non_string_is_stringified(self):
        message = StringToNdefMessageConverter("x/y").convert(42)
        assert message[0].payload == b"42"

    def test_invalid_mime_rejected_at_construction(self):
        with pytest.raises(NdefEncodeError):
            StringToNdefMessageConverter("notamime")

    def test_read_converter_rejects_non_utf8(self):
        message = NdefMessage([mime_record("x/y", b"\xff\xfe\xfa")])
        with pytest.raises(ConverterError):
            NdefMessageToStringConverter().convert(message)


class TestJsonConverters:
    class Payload:
        a: int
        b: str

        def __init__(self, a, b):
            self.a = a
            self.b = b

    def test_roundtrip(self):
        to_ndef = ObjectToJsonConverter("app/json-demo")
        to_obj = JsonToObjectConverter(self.Payload)
        back = to_obj.convert(to_ndef.convert(self.Payload(1, "two")))
        assert isinstance(back, self.Payload)
        assert back.a == 1 and back.b == "two"

    def test_write_side_wraps_serialization_errors(self):
        converter = ObjectToJsonConverter("a/b")
        cyclic = self.Payload(1, "x")
        cyclic.b = cyclic
        with pytest.raises(ConverterError):
            converter.convert(cyclic)

    def test_read_side_wraps_bad_json(self):
        converter = JsonToObjectConverter(self.Payload)
        with pytest.raises(ConverterError):
            converter.convert(NdefMessage([mime_record("a/b", b"{broken")]))

    def test_read_side_wraps_type_mismatch(self):
        converter = JsonToObjectConverter(self.Payload)
        with pytest.raises(ConverterError):
            converter.convert(NdefMessage([mime_record("a/b", b'{"a": "wrong"}')]))


class TestIdentityConverters:
    def test_passes_messages_through(self):
        identity = IdentityConverters()
        message = NdefMessage([mime_record("a/b", b"raw")])
        assert identity.convert(message) is message

    def test_rejects_non_messages(self):
        with pytest.raises(ConverterError):
            IdentityConverters().convert("a string")
