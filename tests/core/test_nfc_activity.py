"""Dedicated tests for NFCActivity's intent routing and teardown."""

import pytest

from repro.android.intents import (
    ACTION_NDEF_DISCOVERED,
    ACTION_TECH_DISCOVERED,
)
from repro.concurrent import EventLog
from repro.core.beam import Beamer, BeamReceivedListener
from repro.core.converters import (
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
)
from repro.core.discovery import TagDiscoverer
from repro.core.nfc_activity import NFCActivity
from repro.tags.factory import make_tag

from tests.conftest import text_tag


class Recorder(TagDiscoverer):
    def __init__(self, activity, mime_type, **kwargs):
        self.log = EventLog()
        super().__init__(
            activity,
            mime_type,
            NdefMessageToStringConverter(),
            StringToNdefMessageConverter(mime_type),
            **kwargs,
        )

    def on_tag_detected(self, reference):
        self.log.append(("tag", reference.cached))

    def on_empty_tag_detected(self, reference):
        self.log.append(("empty", None))


class TestFilterDerivation:
    def test_filters_follow_registrations(self, scenario, phone):
        class App(NFCActivity):
            pass

        app = scenario.start(phone, App)
        assert app.nfc_filters() == []

        def register():
            Recorder(app, "app/one")

        phone.main_looper.post(register)
        phone.sync()
        filters = app.nfc_filters()
        assert len(filters) == 1
        assert filters[0].action == ACTION_NDEF_DISCOVERED
        assert filters[0].mime_pattern == "app/one"

    def test_accept_empty_adds_tech_filter(self, scenario, phone):
        class App(NFCActivity):
            def on_create(self):
                self.disc = Recorder(self, "app/one", accept_empty=True)

        app = scenario.start(phone, App)
        actions = {f.action for f in app.nfc_filters()}
        assert ACTION_TECH_DISCOVERED in actions

    def test_beam_listener_adds_filter(self, scenario, phone):
        class App(NFCActivity):
            def on_create(self):
                self.listener = BeamReceivedListener(
                    self, "beam/type", NdefMessageToStringConverter()
                )

        app = scenario.start(phone, App)
        patterns = {f.mime_pattern for f in app.nfc_filters()}
        assert "beam/type" in patterns


class TestRouting:
    def test_tag_intent_routed_to_matching_discoverer_only(self, scenario, phone):
        class App(NFCActivity):
            def on_create(self):
                self.one = Recorder(self, "app/one")
                self.two = Recorder(self, "app/two")

        app = scenario.start(phone, App)
        scenario.put(text_tag("for one", mime_type="app/one"), phone)
        assert app.one.log.wait_for_count(1)
        assert phone.sync()
        assert len(app.two.log) == 0

    def test_empty_tag_routed_only_to_opted_in(self, scenario, phone):
        class App(NFCActivity):
            def on_create(self):
                self.plain = Recorder(self, "app/one")
                self.empties = Recorder(self, "app/two", accept_empty=True)

        app = scenario.start(phone, App)
        scenario.put(make_tag(), phone)
        assert app.empties.log.wait_for_count(1)
        assert app.empties.log.snapshot() == [("empty", None)]
        assert len(app.plain.log) == 0

    def test_beam_intent_not_routed_to_tag_discoverers(self, scenario, phone):
        class App(NFCActivity):
            def on_create(self):
                self.disc = Recorder(self, "app/one")
                self.received = EventLog()
                outer = self

                class Listener(BeamReceivedListener):
                    def on_beam_received(self, obj):
                        outer.received.append(obj)

                Listener(self, "app/one", NdefMessageToStringConverter())

        app = scenario.start(phone, App)
        other = scenario.add_phone("beam-source")
        scenario.pair(other, phone)
        from repro.ndef.message import NdefMessage
        from repro.ndef.mime import mime_record

        other.nfc_adapter.push_now(
            NdefMessage([mime_record("app/one", b"beamed")])
        )
        assert app.received.wait_for_count(1)
        assert phone.sync()
        assert len(app.disc.log) == 0  # beams never reach tag discoverers


class TestTeardown:
    def test_destroy_stops_beamers_and_references(self, scenario, phone):
        class App(NFCActivity):
            def on_create(self):
                self.beamer = Beamer(
                    self, StringToNdefMessageConverter("app/one")
                )

        app = scenario.start(phone, App)
        tag = text_tag("x", mime_type="app/one")
        from tests.conftest import make_reference

        reference = make_reference(app, tag, phone, mime_type="app/one")
        beamer = app.beamer
        phone.finish_activity(app)
        assert reference.is_stopped
        from repro.errors import ReferenceStoppedError

        with pytest.raises(ReferenceStoppedError):
            beamer.beam("dead")
