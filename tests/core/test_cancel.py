"""Tests for best-effort operation cancellation."""

from repro.concurrent import EventLog, wait_until
from repro.core.operations import OperationOutcome

from tests.conftest import make_reference, text_tag


class TestCancel:
    def test_cancel_queued_operation(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)  # tag out of field
        log = EventLog()
        operation = reference.write(
            "never",
            on_written=lambda r: log.append("written"),
            on_failed=lambda r: log.append("failed"),
        )
        assert reference.cancel(operation)
        assert operation.outcome is OperationOutcome.CANCELLED
        assert reference.pending_count == 0
        scenario.put(tag, phone)
        assert phone.sync()
        assert len(log) == 0  # no listener fired
        assert tag.read_ndef()[0].payload == b"x"  # nothing written

    def test_cancel_settled_operation_returns_false(self, scenario, phone, activity):
        tag = text_tag("x")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        operation = reference.write("done")
        assert wait_until(lambda: operation.outcome is OperationOutcome.SUCCEEDED)
        assert not reference.cancel(operation)
        assert operation.outcome is OperationOutcome.SUCCEEDED

    def test_cancel_middle_of_queue_preserves_rest(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        log = EventLog()
        first = reference.write("first", on_written=lambda r: log.append("first"))
        doomed = reference.write("doomed", on_written=lambda r: log.append("doomed"))
        last = reference.write("last", on_written=lambda r: log.append("last"))
        assert reference.cancel(doomed)
        scenario.put(tag, phone)
        assert log.wait_for_count(2)
        assert log.snapshot() == ["first", "last"]
        assert tag.read_ndef()[0].payload == b"last"
        assert first.outcome is OperationOutcome.SUCCEEDED
        assert last.outcome is OperationOutcome.SUCCEEDED

    def test_cancel_all(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        operations = [reference.write(f"w{i}") for i in range(5)]
        assert reference.cancel_all() == 5
        assert reference.pending_count == 0
        assert all(
            op.outcome is OperationOutcome.CANCELLED for op in operations
        )
        # The reference is still usable afterwards.
        scenario.put(tag, phone)
        log = EventLog()
        reference.write("alive", on_written=lambda r: log.append("ok"))
        assert log.wait_for_count(1)

    def test_cancel_all_on_empty_queue(self, scenario, phone, activity):
        reference = make_reference(activity, text_tag("x"), phone)
        assert reference.cancel_all() == 0
