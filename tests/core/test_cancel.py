"""Tests for best-effort operation cancellation.

The unified semantics (see ``repro.core.reference`` module docs):
application-initiated ``cancel`` / ``cancel_all`` is silent; lifecycle
``stop(notify_pending=True)`` fires the failure listeners of whatever is
still pending. Either way a cancelled operation settles as ``CANCELLED``
exactly once, even when its radio attempt was in flight.
"""

from repro.concurrent import EventLog, wait_until
from repro.core.operations import OperationOutcome
from repro.harness.scenario import Scenario
from repro.radio.timing import TransferTiming

from tests.conftest import PlainNfcActivity, make_reference, text_tag


class TestCancel:
    def test_cancel_queued_operation(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)  # tag out of field
        log = EventLog()
        operation = reference.write(
            "never",
            on_written=lambda r: log.append("written"),
            on_failed=lambda r: log.append("failed"),
        )
        assert reference.cancel(operation)
        assert operation.outcome is OperationOutcome.CANCELLED
        assert reference.pending_count == 0
        scenario.put(tag, phone)
        assert phone.sync()
        assert len(log) == 0  # no listener fired
        assert tag.read_ndef()[0].payload == b"x"  # nothing written

    def test_cancel_settled_operation_returns_false(self, scenario, phone, activity):
        tag = text_tag("x")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        operation = reference.write("done")
        assert wait_until(lambda: operation.outcome is OperationOutcome.SUCCEEDED)
        assert not reference.cancel(operation)
        assert operation.outcome is OperationOutcome.SUCCEEDED

    def test_cancel_middle_of_queue_preserves_rest(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        log = EventLog()
        first = reference.write("first", on_written=lambda r: log.append("first"))
        doomed = reference.write("doomed", on_written=lambda r: log.append("doomed"))
        last = reference.write("last", on_written=lambda r: log.append("last"))
        assert reference.cancel(doomed)
        scenario.put(tag, phone)
        assert log.wait_for_count(2)
        assert log.snapshot() == ["first", "last"]
        assert tag.read_ndef()[0].payload == b"last"
        assert first.outcome is OperationOutcome.SUCCEEDED
        assert last.outcome is OperationOutcome.SUCCEEDED

    def test_cancel_all(self, scenario, phone, activity):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        operations = [reference.write(f"w{i}") for i in range(5)]
        assert reference.cancel_all() == 5
        assert reference.pending_count == 0
        assert all(
            op.outcome is OperationOutcome.CANCELLED for op in operations
        )
        # The reference is still usable afterwards.
        scenario.put(tag, phone)
        log = EventLog()
        reference.write("alive", on_written=lambda r: log.append("ok"))
        assert log.wait_for_count(1)

    def test_cancel_all_on_empty_queue(self, scenario, phone, activity):
        reference = make_reference(activity, text_tag("x"), phone)
        assert reference.cancel_all() == 0


class TestCancelRaces:
    """Races between cancellation/stop and an in-flight radio attempt."""

    def test_cancel_mid_attempt_settles_cancelled_exactly_once(self):
        """Cancelling while the radio attempt is on the air: the data may
        still land on the tag (the honest race of a distributed cancel),
        but the operation stays CANCELLED and no listener ever fires."""
        slow = TransferTiming(base_seconds=0.15, seconds_per_byte=0.0)
        with Scenario(timing=slow) as scenario:
            phone = scenario.add_phone("race-phone")
            activity = scenario.start(phone, PlainNfcActivity)
            tag = text_tag("x")
            scenario.put(tag, phone)
            reference = make_reference(activity, tag, phone)
            log = EventLog()
            operation = reference.write(
                "slow",
                on_written=lambda r: log.append("written"),
                on_failed=lambda r: log.append("failed"),
                timeout=30.0,
            )
            # The attempt counter ticks before the (slow) radio transfer,
            # so this catches the operation while it is in flight.
            assert wait_until(lambda: reference.attempts >= 1, timeout=5)
            assert reference.cancel(operation)
            assert operation.outcome is OperationOutcome.CANCELLED
            # Let the in-flight attempt finish on the air.
            assert wait_until(lambda: reference.successes >= 1, timeout=5)
            assert phone.sync()
            assert len(log) == 0  # silent despite the on-air success
            assert operation.outcome is OperationOutcome.CANCELLED
            assert tag.read_ndef()[0].payload == b"slow"  # it did land

    def test_stop_with_pending_fires_failure_listeners(
        self, scenario, phone, activity
    ):
        """stop(notify_pending=True) flushes every pending operation's
        failure listener -- the teardown-time contrast to cancel_all."""
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)  # tag out of field
        log = EventLog()
        operations = [
            reference.write(
                f"w{i}",
                on_written=lambda r: log.append("written"),
                on_failed=lambda r, i=i: log.append(("failed", i)),
            )
            for i in range(4)
        ]
        reference.stop(notify_pending=True)
        assert log.wait_for_count(4, timeout=5)
        assert sorted(log.snapshot()) == [("failed", i) for i in range(4)]
        assert all(
            op.outcome is OperationOutcome.CANCELLED for op in operations
        )

    def test_stop_default_is_silent_like_cancel_all(
        self, scenario, phone, activity
    ):
        tag = text_tag("x")
        reference = make_reference(activity, tag, phone)
        log = EventLog()
        operations = [
            reference.write(
                f"w{i}",
                on_written=lambda r: log.append("written"),
                on_failed=lambda r: log.append("failed"),
            )
            for i in range(3)
        ]
        reference.stop()
        assert phone.sync()
        assert len(log) == 0
        assert all(
            op.outcome is OperationOutcome.CANCELLED for op in operations
        )

    def test_stop_with_pending_mid_attempt_settles_exactly_once(self):
        """stop(notify_pending=True) racing an in-flight attempt: the
        failure listener fires exactly once and the on-air result, even a
        success, is discarded."""
        slow = TransferTiming(base_seconds=0.15, seconds_per_byte=0.0)
        with Scenario(timing=slow) as scenario:
            phone = scenario.add_phone("stop-race-phone")
            activity = scenario.start(phone, PlainNfcActivity)
            tag = text_tag("x")
            scenario.put(tag, phone)
            reference = make_reference(activity, tag, phone)
            log = EventLog()
            operation = reference.write(
                "slow",
                on_written=lambda r: log.append("written"),
                on_failed=lambda r: log.append("failed"),
                timeout=30.0,
            )
            assert wait_until(lambda: reference.attempts >= 1, timeout=5)
            reference.stop(notify_pending=True)
            assert operation.outcome is OperationOutcome.CANCELLED
            assert log.wait_for_count(1, timeout=5)
            # Give the in-flight attempt time to complete; nothing more
            # may fire and the outcome may not flip.
            import time

            time.sleep(0.3)
            assert phone.sync()
            assert log.snapshot() == ["failed"]
            assert operation.outcome is OperationOutcome.CANCELLED
