"""Property-based tests for the object mapper."""

from typing import Dict, List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gson import Gson

# JSON-able value trees.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class Record:
    name: str
    score: int
    tags: List[str]
    meta: Dict[str, int]
    note: Optional[str]

    def __init__(self, name, score, tags, meta, note):
        self.name = name
        self.score = score
        self.tags = tags
        self.meta = meta
        self.note = note


records = st.builds(
    Record,
    name=st.text(max_size=20),
    score=st.integers(min_value=-1000, max_value=1000),
    tags=st.lists(st.text(max_size=10), max_size=5),
    meta=st.dictionaries(st.text(max_size=5), st.integers(), max_size=4),
    note=st.none() | st.text(max_size=15),
)


@given(json_values)
@settings(max_examples=100)
def test_jsonable_values_roundtrip(value):
    gson = Gson()
    import json

    text = gson.to_json(value)
    assert json.loads(text) == gson.to_jsonable(value)


@given(records)
@settings(max_examples=100)
def test_annotated_object_roundtrip(record):
    gson = Gson()
    back = gson.from_json(gson.to_json(record), Record)
    assert back.name == record.name
    assert back.score == record.score
    assert back.tags == record.tags
    assert back.meta == record.meta
    assert back.note == record.note


@given(st.binary(max_size=200))
def test_bytes_roundtrip(blob):
    class Holder:
        blob: bytes

        def __init__(self, b):
            self.blob = b

    gson = Gson()
    assert gson.from_json(gson.to_json(Holder(blob)), Holder).blob == blob


@given(records)
def test_serialization_is_pure(record):
    """Serializing twice gives identical text and does not mutate the object."""
    gson = Gson()
    before = dict(record.__dict__)
    first = gson.to_json(record)
    second = gson.to_json(record)
    assert first == second
    assert record.__dict__ == before
