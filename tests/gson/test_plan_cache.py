"""Serialization-plan caching: correctness, invalidation, MRO adapters.

The plan cache is a pure fast path -- with and without it, the emitted
JSON must be byte-identical. The stale-adapter regression (registering an
adapter after a class was already encoded) and the subclass resolution
rules live here too.
"""

from typing import Dict, List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gson import Gson, TypeAdapter, annotated_fields, class_plan, transient_fields


class Engine:
    __transient__ = ("warm",)

    cylinders: int

    def __init__(self, cylinders, warm=False):
        self.cylinders = cylinders
        self.warm = warm


class Vehicle:
    __transient__ = ("vin_checksum",)

    wheels: int
    engine: Engine

    def __init__(self, wheels, engine, vin_checksum=0):
        self.wheels = wheels
        self.engine = engine
        self.vin_checksum = vin_checksum


class Car(Vehicle):
    __transient__ = ("odometer",)

    doors: int
    name: Optional[str]

    def __init__(self, doors, name=None, odometer=0, **kwargs):
        super().__init__(4, Engine(4), **kwargs)
        self.doors = doors
        self.name = name
        self.odometer = odometer


class TestClassPlan:
    def test_transients_union_across_mro(self):
        assert transient_fields(Car) == {"odometer", "vin_checksum"}
        assert transient_fields(Vehicle) == {"vin_checksum"}

    def test_annotations_merged_subclass_wins(self):
        merged = annotated_fields(Car)
        assert set(merged) >= {"wheels", "engine", "doors", "name"}

    def test_plan_is_cached_per_class(self):
        assert class_plan(Car) is class_plan(Car)

    def test_gson_plan_cache_hits_on_reuse(self):
        gson = Gson()
        car = Car(5, name="a")
        gson.to_json(car)
        misses_after_first = gson.plan_misses
        gson.to_json(car)
        gson.to_json(car)
        assert gson.plan_misses == misses_after_first  # all later lookups hit
        assert gson.plan_hits > 0

    def test_cache_disabled_never_stores_plans(self):
        gson = Gson(cache_plans=False)
        car = Car(5)
        gson.to_json(car)
        gson.to_json(car)
        assert gson.plan_hits == 0


class TestCacheTransparency:
    """Cache on and cache off must produce identical JSON."""

    def test_nested_object_identical(self):
        car = Car(3, name="kombi", odometer=999, vin_checksum=7)
        assert Gson().to_json(car) == Gson(cache_plans=False).to_json(car)

    @given(
        doors=st.integers(min_value=0, max_value=9),
        name=st.none() | st.text(max_size=20),
        cylinders=st.integers(min_value=1, max_value=16),
        extras=st.dictionaries(
            st.text(min_size=1, max_size=8).filter(lambda s: not s.startswith("_")),
            st.integers() | st.text(max_size=10) | st.booleans() | st.none(),
            max_size=4,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_identical_with_and_without_cache(
        self, doors, name, cylinders, extras
    ):
        car = Car(doors, name=name)
        car.engine = Engine(cylinders, warm=True)
        for key, value in extras.items():
            setattr(car, key, value)

        cached, uncached = Gson(), Gson(cache_plans=False)
        text_cached = cached.to_json(car)
        text_uncached = uncached.to_json(car)
        assert text_cached == text_uncached
        # And a full round trip revives the same public state either way.
        revived_a = cached.from_json(text_cached, Car)
        revived_b = uncached.from_json(text_uncached, Car)
        assert cached.to_json(revived_a) == uncached.to_json(revived_b)
        assert revived_a.engine.cylinders == cylinders
        assert not hasattr(revived_a, "odometer")  # transient stayed off-tag


class Money:
    def __init__(self, cents):
        self.cents = cents


class MoneyAdapter(TypeAdapter):
    def __init__(self, target=Money):
        super().__init__(target)

    def to_jsonable(self, value):
        return f"${value.cents / 100:.2f}"

    def from_jsonable(self, data):
        return Money(int(round(float(str(data).lstrip("$")) * 100)))


class Tip(Money):
    pass


class TestAdapterResolution:
    def test_register_after_encode_invalidates_cached_plan(self):
        """The stale-adapter regression: a plan computed before
        ``register_adapter`` must not keep serving the generic walk."""
        gson = Gson()
        assert gson.to_jsonable(Money(150)) == {"cents": 150}  # plan cached
        gson.register_adapter(MoneyAdapter())
        assert gson.to_jsonable(Money(150)) == "$1.50"

    def test_adapter_applies_to_subclasses_via_mro(self):
        gson = Gson([MoneyAdapter()])
        assert gson.to_jsonable(Tip(25)) == "$0.25"

    def test_exact_adapter_beats_base_class_adapter(self):
        class TipAdapter(MoneyAdapter):
            def __init__(self):
                super().__init__(Tip)

            def to_jsonable(self, value):
                return {"tip_cents": value.cents}

        gson = Gson([MoneyAdapter(), TipAdapter()])
        assert gson.to_jsonable(Tip(25)) == {"tip_cents": 25}
        assert gson.to_jsonable(Money(25)) == "$0.25"

    def test_subclass_plan_recomputed_after_late_registration(self):
        gson = Gson()
        assert gson.to_jsonable(Tip(30)) == {"cents": 30}
        gson.register_adapter(MoneyAdapter())
        assert gson.to_jsonable(Tip(30)) == "$0.30"


class TestDecodeUnaffected:
    def test_decode_uses_exact_adapter_only(self):
        gson = Gson([MoneyAdapter()])
        revived = gson.from_jsonable("$2.50", Money)
        assert isinstance(revived, Money) and revived.cents == 250

    def test_decode_annotations_cached(self):
        gson = Gson()
        data = {"wheels": 4, "doors": 2, "engine": {"cylinders": 6}}
        car = gson.from_jsonable(data, Car)
        assert isinstance(car.engine, Engine)
        assert car.engine.cylinders == 6


class TestTransientInheritance:
    """``__transient__`` is a union across the MRO, memoized per class.

    The cached per-class plans must not bleed between relatives:
    computing the base plan first (caching it) must still give every
    subclass its own correctly unioned set, siblings must stay isolated,
    and re-declaring ``__transient__`` in a subclass adds names -- it can
    never *remove* a base class's transients.
    """

    def test_subclass_adds_to_cached_base_plan(self):
        class Base:
            __transient__ = ("scratch",)

        plan_base = class_plan(Base)  # cache the base plan first

        class Sub(Base):
            __transient__ = ("extra",)

        assert plan_base.transients == frozenset({"scratch"})
        assert class_plan(Sub).transients == frozenset({"scratch", "extra"})
        # The base plan was not mutated by computing the subclass's.
        assert class_plan(Base).transients == frozenset({"scratch"})

    def test_redeclaring_cannot_remove_inherited_transients(self):
        class Base:
            __transient__ = ("secret",)

        class Sub(Base):
            __transient__ = ()  # an attempt to "un-transient" secret

        assert class_plan(Sub).transients == frozenset({"secret"})
        gson = Gson()
        sub = Sub()
        sub.secret = "hidden"
        sub.shown = "visible"
        assert gson.to_jsonable(sub) == {"shown": "visible"}

    def test_sibling_subclasses_stay_isolated(self):
        class Base:
            __transient__ = ("common",)

        class Left(Base):
            __transient__ = ("left_only",)

        class Right(Base):
            __transient__ = ("right_only",)

        # Interleave computation to exercise the shared cache.
        left = class_plan(Left).transients
        right = class_plan(Right).transients
        assert left == frozenset({"common", "left_only"})
        assert right == frozenset({"common", "right_only"})
        assert class_plan(Left).transients == left  # stable on re-read

    def test_three_level_union_with_diamond(self):
        class Root:
            __transient__ = ("a",)

        class LeftMid(Root):
            __transient__ = ("b",)

        class RightMid(Root):
            __transient__ = ("c",)

        class Leaf(LeftMid, RightMid):
            __transient__ = ("d",)

        assert class_plan(Leaf).transients == frozenset("abcd")

    def test_thing_subclass_inherits_transients_for_public_fields(self):
        """The Thing layer consumes the same plans: a Thing sub-subclass
        serializes with the whole inherited transient set excluded."""
        from repro.things.thing import Thing

        class Sensor(Thing):
            __transient__ = ("last_error",)

            def __init__(self, activity=None):
                # Bypass activity plumbing: plans are pure class data.
                self._activity = activity
                self._reference = None
                self.name = "s1"
                self.last_error = None

        class CalibratedSensor(Sensor):
            __transient__ = ("calibration_scratch",)

            def __init__(self):
                super().__init__()
                self.offset = 0.5
                self.calibration_scratch = [1, 2, 3]

        sensor = CalibratedSensor()
        assert sensor.public_fields() == {"name": "s1", "offset": 0.5}
        assert class_plan(CalibratedSensor).transients >= frozenset(
            {"last_error", "calibration_scratch"}
        )


class TestDynamicClasses:
    def test_plan_cache_does_not_leak_types(self):
        """Weak keying: dynamically created classes stay collectable."""
        import gc
        import weakref

        cls = type("Ephemeral", (), {"__transient__": ("x",)})
        class_plan(cls)
        ref = weakref.ref(cls)
        del cls
        gc.collect()
        assert ref() is None
