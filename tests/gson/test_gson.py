"""Unit tests for the GSON-like object mapper."""

from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.errors import (
    CircularReferenceError,
    DeserializationError,
    SerializationError,
)
from repro.gson import Gson, TypeAdapter


class Leaf:
    label: str

    def __init__(self, label="leaf"):
        self.label = label


class Node:
    __transient__ = ("cache",)

    name: str
    children: List[Leaf]
    weight: float

    def __init__(self):
        self.name = "root"
        self.children = [Leaf("a"), Leaf("b")]
        self.weight = 1.5
        self.cache = {"expensive": True}
        self._private = object()


@pytest.fixture
def gson():
    return Gson()


class TestSerialization:
    def test_primitives_pass_through(self, gson):
        assert gson.to_jsonable(None) is None
        assert gson.to_jsonable(True) is True
        assert gson.to_jsonable(7) == 7
        assert gson.to_jsonable(2.5) == 2.5
        assert gson.to_jsonable("x") == "x"

    def test_containers(self, gson):
        assert gson.to_jsonable([1, (2, 3), {4}]) == [1, [2, 3], [4]]
        assert gson.to_jsonable({"a": {"b": 1}}) == {"a": {"b": 1}}

    def test_object_walk_skips_private_and_transient(self, gson):
        data = gson.to_jsonable(Node())
        assert set(data) == {"name", "children", "weight"}
        assert data["children"] == [{"label": "a"}, {"label": "b"}]

    def test_transient_declared_on_base_class_applies_to_subclass(self, gson):
        class Sub(Node):
            pass

        data = gson.to_jsonable(Sub())
        assert "cache" not in data

    def test_bytes_as_base64(self, gson):
        assert gson.to_jsonable(b"\x00\xff") == "AP8="

    def test_non_string_dict_keys_rejected(self, gson):
        with pytest.raises(SerializationError):
            gson.to_jsonable({1: "x"})

    def test_object_without_dict_rejected(self, gson):
        with pytest.raises(SerializationError):
            gson.to_jsonable(object())

    def test_direct_cycle_rejected(self, gson):
        node = Node()
        node.children = [node]
        with pytest.raises(CircularReferenceError):
            gson.to_jsonable(node)

    def test_indirect_cycle_rejected(self, gson):
        a, b = Node(), Node()
        a.children = [b]
        b.children = [a]
        with pytest.raises(CircularReferenceError):
            gson.to_jsonable(a)

    def test_shared_subobject_is_not_a_cycle(self, gson):
        shared = Leaf("shared")
        node = Node()
        node.children = [shared, shared]
        data = gson.to_jsonable(node)
        assert data["children"] == [{"label": "shared"}, {"label": "shared"}]

    def test_json_text_is_deterministic(self, gson):
        assert gson.to_json(Node()) == gson.to_json(Node())


class TestDeserialization:
    def test_object_roundtrip(self, gson):
        back = gson.from_json(gson.to_json(Node()), Node)
        assert back.name == "root"
        assert back.weight == 1.5
        assert [leaf.label for leaf in back.children] == ["a", "b"]
        assert all(isinstance(leaf, Leaf) for leaf in back.children)

    def test_init_not_called(self, gson):
        class Booby:
            tripped = False
            value: int

            def __init__(self):
                type(self).tripped = True

        instance = gson.from_json('{"value": 3}', Booby)
        assert instance.value == 3
        assert not Booby.tripped

    def test_invalid_json_rejected(self, gson):
        with pytest.raises(DeserializationError):
            gson.from_json("{not json", Node)

    def test_wrong_shape_rejected(self, gson):
        with pytest.raises(DeserializationError):
            gson.from_json("[1, 2]", Node)

    def test_primitive_type_mismatch_rejected(self, gson):
        class Holder:
            count: int

        with pytest.raises(DeserializationError):
            gson.from_json('{"count": "not a number"}', Holder)

    def test_bool_is_not_an_int(self, gson):
        class Holder:
            count: int

        with pytest.raises(DeserializationError):
            gson.from_json('{"count": true}', Holder)

    def test_int_promoted_to_float(self, gson):
        class Holder:
            ratio: float

        assert gson.from_json('{"ratio": 2}', Holder).ratio == 2.0

    def test_optional_field(self, gson):
        class Holder:
            maybe: Optional[int]

        assert gson.from_json('{"maybe": null}', Holder).maybe is None
        assert gson.from_json('{"maybe": 3}', Holder).maybe == 3

    def test_typed_containers(self, gson):
        class Holder:
            items: List[Leaf]
            names: Dict[str, Leaf]
            pair: Tuple[int, int]
            tags: Set[str]

        text = (
            '{"items": [{"label": "x"}], "names": {"k": {"label": "y"}},'
            ' "pair": [1, 2], "tags": ["a", "a", "b"]}'
        )
        holder = gson.from_json(text, Holder)
        assert isinstance(holder.items[0], Leaf) and holder.items[0].label == "x"
        assert isinstance(holder.names["k"], Leaf)
        assert holder.pair == (1, 2)
        assert holder.tags == {"a", "b"}

    def test_unannotated_field_stays_raw(self, gson):
        class Holder:
            pass

        holder = gson.from_json('{"anything": {"nested": 1}}', Holder)
        assert holder.anything == {"nested": 1}

    def test_list_expected_but_object_given(self, gson):
        class Holder:
            items: List[int]

        with pytest.raises(DeserializationError):
            gson.from_json('{"items": {"not": "a list"}}', Holder)

    def test_bytes_field_roundtrip(self, gson):
        class Holder:
            blob: bytes

            def __init__(self):
                self.blob = b"\x01\x02"

        back = gson.from_json(gson.to_json(Holder()), Holder)
        assert back.blob == b"\x01\x02"


class TestTypeAdapters:
    def test_adapter_wins_over_object_walk(self):
        class Point:
            def __init__(self, x, y):
                self.x = x
                self.y = y

        class PointAdapter(TypeAdapter):
            def __init__(self):
                super().__init__(Point)

            def to_jsonable(self, value):
                return [value.x, value.y]

            def from_jsonable(self, data):
                return Point(data[0], data[1])

        gson = Gson(adapters=[PointAdapter()])
        assert gson.to_jsonable(Point(1, 2)) == [1, 2]
        back = gson.from_jsonable([3, 4], Point)
        assert (back.x, back.y) == (3, 4)

    def test_adapter_applies_to_nested_fields(self):
        class Point:
            def __init__(self, x, y):
                self.x = x
                self.y = y

        class PointAdapter(TypeAdapter):
            def __init__(self):
                super().__init__(Point)

            def to_jsonable(self, value):
                return [value.x, value.y]

            def from_jsonable(self, data):
                return Point(*data)

        class Shape:
            corner: Point

            def __init__(self):
                self.corner = Point(5, 6)

        gson = Gson(adapters=[PointAdapter()])
        back = gson.from_json(gson.to_json(Shape()), Shape)
        assert (back.corner.x, back.corner.y) == (5, 6)
