"""Unit tests for the simulated WiFi subsystem."""

from repro.apps.wifi.wifi_manager import WifiManager, WifiNetworkRegistry


class TestRegistry:
    def test_add_and_lookup(self):
        registry = WifiNetworkRegistry()
        network = registry.add_network("net", "key")
        assert registry.lookup("net") is network
        assert registry.ssids() == ["net"]

    def test_remove(self):
        registry = WifiNetworkRegistry()
        registry.add_network("net", "key")
        registry.remove_network("net")
        assert registry.lookup("net") is None

    def test_remove_unknown_is_noop(self):
        WifiNetworkRegistry().remove_network("ghost")

    def test_readd_replaces_key(self):
        registry = WifiNetworkRegistry()
        registry.add_network("net", "old")
        registry.add_network("net", "new")
        assert registry.lookup("net").key == "new"


class TestManager:
    def test_connect_success(self):
        registry = WifiNetworkRegistry()
        registry.add_network("net", "key")
        manager = WifiManager(registry)
        assert manager.connect("net", "key")
        assert manager.is_connected
        assert manager.connected_ssid == "net"

    def test_connect_wrong_key(self):
        registry = WifiNetworkRegistry()
        registry.add_network("net", "key")
        manager = WifiManager(registry)
        assert not manager.connect("net", "wrong")
        assert not manager.is_connected

    def test_connect_unknown_network(self):
        manager = WifiManager(WifiNetworkRegistry())
        assert not manager.connect("ghost", "key")

    def test_disconnect(self):
        registry = WifiNetworkRegistry()
        registry.add_network("net", "key")
        manager = WifiManager(registry)
        manager.connect("net", "key")
        manager.disconnect()
        assert not manager.is_connected

    def test_attempt_counter(self):
        registry = WifiNetworkRegistry()
        manager = WifiManager(registry)
        manager.connect("a", "b")
        manager.connect("c", "d")
        assert manager.connection_attempts == 2

    def test_switching_networks(self):
        registry = WifiNetworkRegistry()
        registry.add_network("one", "1")
        registry.add_network("two", "2")
        manager = WifiManager(registry)
        manager.connect("one", "1")
        manager.connect("two", "2")
        assert manager.connected_ssid == "two"
