"""Behavioural equivalence of the MORENA and handcrafted WiFi apps.

The evaluation's premise (section 4) is that the two implementations are
"almost exactly the same application". These tests run both through the
same user stories -- join by tag, share via empty tag, beam, save -- and
assert identical outcomes, plus the one *intended* behavioural
difference: only MORENA retries automatically.
"""

import json

import pytest

from repro.apps.wifi import WifiConfig, WifiJoinerActivity
from repro.baseline import HandcraftedWifiActivity, WifiConfigData
from repro.concurrent import wait_until
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.link import FlakyThenGoodLink
from repro.tags.factory import make_tag

WIFI_MIME = "application/vnd.morena.wificonfig"


def credentials_tag(ssid="corpnet", key="s3cret"):
    payload = json.dumps({"ssid": ssid, "key": key}, sort_keys=True).encode()
    return make_tag(content=NdefMessage([mime_record(WIFI_MIME, payload)]))


def settle(scenario, phone, app):
    """Drain loopers and worker threads for either implementation."""
    phone.sync()
    if isinstance(app, HandcraftedWifiActivity):
        app.join_workers()
    phone.sync()


@pytest.fixture(params=["morena", "handcrafted"])
def variant(request, scenario):
    scenario.wifi_registry.add_network("corpnet", "s3cret")
    phone = scenario.add_phone(f"{request.param}-phone")
    if request.param == "morena":
        app = scenario.start(phone, WifiJoinerActivity, scenario.wifi_registry)
        config_factory = lambda: WifiConfig(app, "corpnet", "s3cret")  # noqa: E731
    else:
        app = scenario.start(phone, HandcraftedWifiActivity, scenario.wifi_registry)
        config_factory = lambda: WifiConfigData("corpnet", "s3cret")  # noqa: E731
    return request.param, phone, app, config_factory


class TestSharedStories:
    def test_join_by_tag(self, scenario, variant):
        _, phone, app, _ = variant
        scenario.put(credentials_tag(), phone)
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True)
            and app.wifi.connected_ssid == "corpnet"
        )

    def test_share_via_empty_tag(self, scenario, variant):
        _, phone, app, config_factory = variant
        empty = make_tag()
        app.share_with_tag(config_factory())
        scenario.put(empty, phone)
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True)
            and app.pending_share is None
        )
        stored = json.loads(empty.read_ndef()[0].payload)
        assert stored == {"ssid": "corpnet", "key": "s3cret"}
        assert "WiFi joiner created!" in phone.toasts.snapshot()

    def test_share_via_blank_unformatted_tag(self, scenario, variant):
        _, phone, app, config_factory = variant
        blank = make_tag(formatted=False)
        app.share_with_tag(config_factory())
        scenario.put(blank, phone)
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True) and blank.is_ndef_formatted
        )
        assert json.loads(blank.read_ndef()[0].payload)["ssid"] == "corpnet"

    def test_beam_between_variants(self, scenario, variant):
        """Either variant can beam to a MORENA receiver: same wire format."""
        _, phone, app, config_factory = variant
        receiver_phone = scenario.add_phone("receiver")
        receiver = scenario.start(
            receiver_phone, WifiJoinerActivity, scenario.wifi_registry
        )
        scenario.pair(phone, receiver_phone)
        phone.main_looper.post(lambda: app.share_with_phone(config_factory()))
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True)
            and receiver.wifi.connected_ssid == "corpnet"
        )

    def test_rename_and_save(self, scenario, variant):
        name, phone, app, _ = variant
        scenario.wifi_registry.add_network("renamed", "newkey")
        tag = credentials_tag()
        scenario.put(tag, phone)
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True)
            and app.last_config is not None
        )
        config = app.last_config
        phone.main_looper.post(
            lambda: app.rename_network(config, "renamed", "newkey")
        )
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True)
            and "WiFi joiner saved!" in phone.toasts.snapshot()
        )
        assert json.loads(tag.read_ndef()[0].payload)["ssid"] == "renamed"


class TestTheBehaviouralDifference:
    """Section 4: 'operations that fail due to tag disconnections are
    automatically retried, which is not incorporated in the handcrafted
    version, in which the user must manually reattempt the operation.'"""

    def test_morena_save_survives_flaky_link(self, scenario):
        scenario.wifi_registry.add_network("corpnet", "s3cret")
        phone = scenario.add_phone("morena-flaky")
        app = scenario.start(phone, WifiJoinerActivity, scenario.wifi_registry)
        tag = credentials_tag()
        scenario.put(tag, phone)
        assert wait_until(lambda: app.last_config is not None)
        phone.port.set_link(FlakyThenGoodLink(3))
        config = app.last_config
        phone.main_looper.post(lambda: app.rename_network(config, "new", "key"))
        assert wait_until(
            lambda: "WiFi joiner saved!" in phone.toasts.snapshot(), timeout=5
        )
        assert json.loads(tag.read_ndef()[0].payload)["ssid"] == "new"

    def test_handcrafted_save_fails_on_flaky_link(self, scenario):
        scenario.wifi_registry.add_network("corpnet", "s3cret")
        phone = scenario.add_phone("hand-flaky")
        app = scenario.start(
            phone, HandcraftedWifiActivity, scenario.wifi_registry
        )
        tag = credentials_tag()
        scenario.put(tag, phone)
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True)
            and app.last_config is not None
        )
        phone.port.set_link(FlakyThenGoodLink(3))
        config = app.last_config
        phone.main_looper.post(lambda: app.rename_network(config, "new", "key"))
        assert wait_until(
            lambda: (settle(scenario, phone, app) or True)
            and any("tap again" in t for t in phone.toasts.snapshot()),
            timeout=5,
        )
        # The single attempt failed; the tag still holds the old credentials.
        assert json.loads(tag.read_ndef()[0].payload)["ssid"] == "corpnet"
