"""Tests for WSC/handover interop in the WiFi application."""

import pytest

from repro.apps.wifi import WifiConfig
from repro.apps.wifi.interop import (
    WscReadConverter,
    WscWifiJoinerActivity,
    WscWriteConverter,
    router_sticker,
)
from repro.concurrent import wait_until
from repro.errors import ConverterError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.ndef.wsc import WifiCredential
from repro.tags.factory import make_tag


@pytest.fixture
def joiner(scenario):
    scenario.wifi_registry.add_network("router-net", "router-key")
    phone = scenario.add_phone("interop-phone")
    app = scenario.start(
        phone, WscWifiJoinerActivity, scenario.wifi_registry
    )
    return phone, app


class TestConverters:
    def test_write_then_read_roundtrip(self):
        credential = WifiCredential("net", "key")
        message = WscWriteConverter().convert(credential)
        assert WscReadConverter().convert(message) == credential

    def test_read_bare_wsc_record(self):
        message = NdefMessage([WifiCredential("bare", "k").to_record()])
        assert WscReadConverter().convert(message).ssid == "bare"

    def test_read_rejects_foreign_messages(self):
        with pytest.raises(ConverterError):
            WscReadConverter().convert(NdefMessage([mime_record("a/b", b"")]))

    def test_write_rejects_non_credentials(self):
        with pytest.raises(ConverterError):
            WscWriteConverter().convert("a string")

    def test_router_sticker_helper(self):
        message = router_sticker("net", "key", auth="wpa2-personal")
        assert message[0].type == b"Hs"
        assert WscReadConverter().convert(message).key == "key"


class TestJoining:
    def test_join_from_router_sticker(self, scenario, joiner):
        phone, app = joiner
        tag = make_tag(content=router_sticker("router-net", "router-key"))
        scenario.put(tag, phone)
        assert wait_until(lambda: app.wifi.connected_ssid == "router-net")
        assert any("WSC tag" in toast for toast in phone.toasts.snapshot())

    def test_join_from_bare_wsc_tag(self, scenario, joiner):
        phone, app = joiner
        message = NdefMessage(
            [WifiCredential("router-net", "router-key").to_record()]
        )
        scenario.put(make_tag(content=message), phone)
        assert wait_until(lambda: app.wifi.connected_ssid == "router-net")

    def test_thing_tags_still_work(self, scenario, joiner):
        """The WSC discoverer coexists with the thing discoverer."""
        phone, app = joiner
        tag = make_tag()
        app.share_with_tag(WifiConfig(app, "router-net", "router-key"))
        scenario.put(tag, phone)
        assert wait_until(
            lambda: "WiFi joiner created!" in phone.toasts.snapshot()
        )
        scenario.take(tag, phone)
        scenario.put(tag, phone)
        assert wait_until(lambda: app.wifi.connected_ssid == "router-net")

    def test_wrong_key_reports_failure(self, scenario, joiner):
        phone, app = joiner
        tag = make_tag(content=router_sticker("router-net", "wrong-key"))
        scenario.put(tag, phone)
        assert wait_until(
            lambda: any(
                "Could not join" in toast for toast in phone.toasts.snapshot()
            )
        )
        assert app.wifi.connected_ssid is None
