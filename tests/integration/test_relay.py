"""NFCGate-style relay scenarios: servicing a tag in another phone's field.

The transport seam's acceptance test: a ``TagReference`` held by device A
reads, writes and leases a tag physically lying in device B's field, with
*zero* changes at the reference call sites -- the relay is wired purely by
constructing the scenario with a :class:`RelayTransport` and pairing the
fields. Offline batching and the per-port transaction scheduler apply to
relayed tags exactly as to local ones.
"""

import pytest

from repro.concurrent import EventLog, wait_until
from repro.core.reference import TagReference
from repro.android.nfc.tech import Tag
from repro.harness.scenario import Scenario
from repro.leasing.manager import LeaseManager
from repro.radio.transport import RelayTransport

from tests.conftest import PlainNfcActivity, string_converters, text_tag


@pytest.fixture
def relay_scenario():
    with Scenario(transport=RelayTransport()) as s:
        yield s


@pytest.fixture
def world(relay_scenario):
    """A reader phone, a bench phone, and a tag on the bench."""
    scenario = relay_scenario
    tag = text_tag("bench data")
    reader = scenario.add_phone("reader")
    bench = scenario.add_phone("bench")
    app = scenario.start(reader, PlainNfcActivity)
    scenario.put(tag, bench)
    read_conv, write_conv = string_converters()
    reference = TagReference(Tag(tag, reader.port), app, read_conv, write_conv)
    return scenario, tag, reader, bench, reference


class TestRelayedReference:
    def test_pairing_connects_the_remote_reference(self, world):
        scenario, tag, reader, bench, reference = world
        assert not reference.is_connected
        scenario.env.pair_fields(reader.port, bench.port)
        assert wait_until(lambda: reference.is_connected)

    def test_read_through_the_relay(self, world):
        scenario, tag, reader, bench, reference = world
        scenario.env.pair_fields(reader.port, bench.port)
        got = EventLog()
        reference.read(on_read=lambda ref: got.append(ref.cached))
        assert got.wait_for_count(1)
        assert got.snapshot() == ["bench data"]

    def test_write_through_the_relay_lands_on_the_physical_tag(self, world):
        scenario, tag, reader, bench, reference = world
        scenario.env.pair_fields(reader.port, bench.port)
        done = EventLog()
        reference.write("written remotely", on_written=lambda _r: done.append("ok"))
        assert done.wait_for_count(1)
        # The physical tag on the bench now carries the reader's write.
        payload = tag.read_ndef()[0].payload
        assert payload == b"written remotely"

    def test_unpairing_disconnects_like_a_departing_tag(self, world):
        scenario, tag, reader, bench, reference = world
        scenario.env.pair_fields(reader.port, bench.port)
        assert wait_until(lambda: reference.is_connected)
        scenario.env.unpair_fields(reader.port, bench.port)
        assert wait_until(lambda: not reference.is_connected)

    def test_offline_batch_drains_in_one_relayed_window(self, world):
        """The tx scheduler treats relay arrival exactly like a re-tap."""
        scenario, tag, reader, bench, reference = world
        order = EventLog()
        reference.write("first", on_written=lambda _r: order.append("first"))
        reference.write("second", on_written=lambda _r: order.append("second"))
        reference.read(on_read=lambda ref: order.append(("read", ref.cached)))

        connects_before = reader.port.connects
        scenario.env.pair_fields(reader.port, bench.port)
        assert order.wait_for_count(3)
        assert order.snapshot() == ["first", "second", ("read", "second")]
        # One shared connect round for the whole batch, through the relay.
        assert reader.port.connects - connects_before == 1


class TestRelayedLease:
    def test_lease_acquired_and_renewed_over_the_relay(self, world):
        scenario, tag, reader, bench, reference = world
        scenario.env.pair_fields(reader.port, bench.port)
        manager = LeaseManager(reference, "reader", drift_bound=0.0)
        acquired = EventLog()
        manager.acquire(60.0, on_acquired=lambda lease: acquired.append(lease))
        assert acquired.wait_for_count(1, timeout=5)

        renewed = EventLog()
        manager.renew(60.0, on_renewed=lambda lease: renewed.append(lease))
        assert renewed.wait_for_count(1, timeout=5)

    def test_guarded_write_over_the_relay(self, world):
        from repro.ndef.mime import mime_record

        scenario, tag, reader, bench, reference = world
        scenario.env.pair_fields(reader.port, bench.port)
        manager = LeaseManager(reference, "reader", drift_bound=0.0)
        acquired = EventLog()
        manager.acquire(60.0, on_acquired=lambda lease: acquired.append(lease))
        assert acquired.wait_for_count(1, timeout=5)

        written = EventLog()
        manager.write_guarded(
            [mime_record("application/guarded", b"relay payload")],
            on_written=lambda: written.append("ok"),
        )
        assert written.wait_for_count(1, timeout=5)


class TestBothSidesService:
    def test_local_reference_on_bench_still_works(self, world):
        """Relaying adds a reader; it never breaks the local holder."""
        scenario, tag, reader, bench, reference = world
        scenario.env.pair_fields(reader.port, bench.port)
        bench_app = scenario.start(bench, PlainNfcActivity)
        read_conv, write_conv = string_converters()
        local = TagReference(Tag(tag, bench.port), bench_app, read_conv, write_conv)
        got = EventLog()
        local.read(on_read=lambda ref: got.append(ref.cached))
        assert got.wait_for_count(1)
        assert got.snapshot() == ["bench data"]
