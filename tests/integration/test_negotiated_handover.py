"""Negotiated handover: one phone asks, the other offers carriers.

The static-handover tag (router sticker) has a phone-to-phone sibling:
the requester sends a Handover Request over SNEP GET, the responder
answers with a Handover Select carrying its carriers (here: WiFi
credentials in WSC format). This is how a phone that *knows* a network
shares it with one that asks.
"""

import pytest

from repro.errors import BeamError
from repro.ndef.handover import (
    CPS_ACTIVE,
    build_handover_request,
    parse_handover_request,
)
from repro.ndef.message import NdefMessage
from repro.ndef.record import NdefRecord
from repro.ndef.wsc import WSC_MIME_TYPE, WifiCredential
from repro.ndef.handover import build_handover_select


def wifi_select_message(ssid: str, key: str) -> NdefMessage:
    bare = WifiCredential(ssid, key).to_record()
    carrier = NdefRecord(bare.tnf, bare.type, b"w", bare.payload)
    return build_handover_select([(carrier, CPS_ACTIVE)])


class TestRequestCodec:
    def test_request_roundtrip(self):
        message = build_handover_request([WSC_MIME_TYPE, "application/x-alt"])
        parsed = parse_handover_request(message)
        assert parsed.version == 0x12
        assert parsed.requested_mime_types == [WSC_MIME_TYPE, "application/x-alt"]

    def test_collision_number_carried(self):
        message = build_handover_request([WSC_MIME_TYPE], random_number=0xBEEF)
        assert parse_handover_request(message).random_number == 0xBEEF

    def test_empty_request_rejected(self):
        from repro.errors import NdefEncodeError

        with pytest.raises(NdefEncodeError):
            build_handover_request([])

    def test_parse_rejects_non_request(self):
        from repro.errors import NdefDecodeError

        with pytest.raises(NdefDecodeError):
            parse_handover_request(wifi_select_message("n", "k"))


class TestNegotiation:
    @pytest.fixture
    def phones(self, scenario):
        asker = scenario.add_phone("asker")
        sharer = scenario.add_phone("sharer")
        return scenario, asker, sharer

    def install_wifi_responder(self, sharer, ssid="HomeNet", key="hk"):
        def responder(request, sender):
            if WSC_MIME_TYPE in request.requested_mime_types:
                return wifi_select_message(ssid, key)
            return None

        sharer.nfc_adapter.set_handover_responder(responder)

    def test_successful_negotiation(self, phones):
        scenario, asker, sharer = phones
        self.install_wifi_responder(sharer)
        scenario.pair(asker, sharer)
        answers = asker.nfc_adapter.request_handover([WSC_MIME_TYPE])
        assert len(answers) == 1
        peer_name, select = answers[0]
        assert peer_name == "sharer"
        credential = WifiCredential.from_record(select.carrier_records()[0])
        assert credential.ssid == "HomeNet"
        assert credential.key == "hk"

    def test_responder_offering_nothing_is_skipped(self, phones):
        scenario, asker, sharer = phones
        self.install_wifi_responder(sharer)
        scenario.pair(asker, sharer)
        answers = asker.nfc_adapter.request_handover(["application/x-bluetooth"])
        assert answers == []

    def test_peer_without_responder_is_skipped(self, phones):
        scenario, asker, sharer = phones
        # The sharer has a beam handler (activity) but no responder.
        sharer.port.set_beam_handler(lambda sender, message: None)
        scenario.pair(asker, sharer)
        assert asker.nfc_adapter.request_handover([WSC_MIME_TYPE]) == []

    def test_no_peer_raises(self, phones):
        _, asker, _ = phones
        with pytest.raises(BeamError):
            asker.nfc_adapter.request_handover([WSC_MIME_TYPE])

    def test_responder_uninstall(self, phones):
        scenario, asker, sharer = phones
        self.install_wifi_responder(sharer)
        sharer.nfc_adapter.set_handover_responder(None)
        scenario.pair(asker, sharer)
        assert asker.nfc_adapter.request_handover([WSC_MIME_TYPE]) == []

    def test_two_sharers_both_answer(self, scenario):
        asker = scenario.add_phone("asker2")
        answers_expected = {}
        for index in range(2):
            sharer = scenario.add_phone(f"sharer-{index}")
            ssid = f"net-{index}"
            answers_expected[sharer.name] = ssid

            def responder(request, sender, ssid=ssid):
                return wifi_select_message(ssid, "k")

            sharer.nfc_adapter.set_handover_responder(responder)
            scenario.pair(asker, sharer)
        answers = asker.nfc_adapter.request_handover([WSC_MIME_TYPE])
        got = {
            peer: WifiCredential.from_record(select.carrier_records()[0]).ssid
            for peer, select in answers
        }
        assert got == answers_expected

    def test_end_to_end_wifi_join_via_negotiation(self, phones):
        """The full story: ask nearby phones for WiFi, join what comes back."""
        from repro.apps.wifi.wifi_manager import WifiManager

        scenario, asker, sharer = phones
        scenario.wifi_registry.add_network("HomeNet", "hk")
        self.install_wifi_responder(sharer)
        scenario.pair(asker, sharer)
        wifi = WifiManager(scenario.wifi_registry)
        for _peer, select in asker.nfc_adapter.request_handover([WSC_MIME_TYPE]):
            credential = WifiCredential.from_record(select.carrier_records()[0])
            if wifi.connect(credential.ssid, credential.key):
                break
        assert wifi.connected_ssid == "HomeNet"

    def test_beam_still_works_alongside_responder(self, phones):
        """PUT (beam) and GET (handover) coexist on one SNEP server."""
        from repro.concurrent import EventLog
        from repro.ndef.mime import mime_record

        scenario, asker, sharer = phones
        received = EventLog()
        sharer.port.set_beam_handler(
            lambda sender, message: received.append(message[0].payload)
        )
        self.install_wifi_responder(sharer)
        scenario.pair(asker, sharer)
        # GET first, then PUT.
        assert asker.nfc_adapter.request_handover([WSC_MIME_TYPE])
        asker.nfc_adapter.push_now(
            NdefMessage([mime_record("a/b", b"beamed alongside")])
        )
        assert received.wait_for_count(1)
        assert received.snapshot() == [b"beamed alongside"]
