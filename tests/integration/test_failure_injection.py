"""Failure-injection integration tests: lossy links, tears, corruption."""

from repro.concurrent import EventLog, wait_until
from repro.core.operations import OperationOutcome
from repro.radio.link import FlakyThenGoodLink, LossyLink, ScriptedLink
from repro.tags.factory import make_tag

from tests.conftest import make_reference, text_message, text_tag


class TestLossyLinks:
    def test_read_eventually_succeeds_on_lossy_link(self, scenario, phone, activity):
        phone.port.set_link(LossyLink(0.6, seed=11))
        tag = text_tag("persistent")
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        log = EventLog()
        ref.read(on_read=lambda r: log.append(r.cached), timeout=10.0)
        assert log.wait_for_count(1, timeout=10)
        assert log.snapshot() == ["persistent"]

    def test_many_queued_writes_survive_lossy_link(self, scenario, phone, activity):
        phone.port.set_link(LossyLink(0.4, seed=3))
        tag = text_tag("start")
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        log = EventLog()
        for index in range(10):
            ref.write(
                f"w{index}",
                on_written=lambda r, i=index: log.append(i),
                timeout=15.0,
            )
        assert log.wait_for_count(10, timeout=15)
        assert log.snapshot() == list(range(10))
        assert tag.read_ndef()[0].payload == b"w9"


class TestTornWrites:
    def test_corrupted_tag_healed_by_retry(self, scenario, phone, activity):
        """A tear corrupts the TLV; MORENA's retry rewrites and heals it."""
        phone.port.corrupt_on_tear = True
        phone.port.set_link(FlakyThenGoodLink(1))
        tag = text_tag("good")
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        log = EventLog()
        ref.write("final", on_written=lambda r: log.append("done"), timeout=10.0)
        assert log.wait_for_count(1, timeout=10)
        assert tag.read_ndef()[0].payload == b"final"

    def test_corrupted_tag_read_retries_until_healed(
        self, scenario, phone, activity
    ):
        """A tag torn by another device is unreadable until rewritten."""
        tag = text_tag("original")
        encoded = text_message("replacement").to_bytes()
        tag._store_tlv(encoded[: len(encoded) // 2])  # corrupt externally
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        failures = EventLog()
        ref.read(on_failed=lambda r: failures.append("x"), timeout=0.3)
        # Unreadable: the read times out (transient-retried, never fatal).
        assert failures.wait_for_count(1, timeout=3)
        # Heal the tag; the next read succeeds.
        tag.write_ndef(text_message("healed"))
        log = EventLog()
        ref.read(on_read=lambda r: log.append(r.cached))
        assert log.wait_for_count(1)
        assert log.snapshot() == ["healed"]


class TestTagChurn:
    def test_rapid_tap_withdraw_cycles(self, scenario, phone, activity):
        tag = text_tag("churn")
        ref = None
        log = EventLog()
        for cycle in range(10):
            scenario.put(tag, phone)
            if ref is None:
                ref = make_reference(activity, tag, phone)
                ref.write("churned", on_written=lambda r: log.append("ok"), timeout=10.0)
            scenario.take(tag, phone)
        scenario.put(tag, phone)
        assert log.wait_for_count(1, timeout=10)
        assert tag.read_ndef()[0].payload == b"churned"

    def test_operations_do_not_leak_across_references(self, scenario, phone, activity):
        """Stopping one tag's reference leaves another tag's queue alive."""
        tag_a = text_tag("a")
        tag_b = text_tag("b")
        ref_a = make_reference(activity, tag_a, phone)
        ref_b = make_reference(activity, tag_b, phone)
        log = EventLog()
        ref_b.write("b-write", on_written=lambda r: log.append("b-ok"))
        ref_a.stop()
        scenario.put(tag_b, phone)
        assert log.wait_for_count(1)
        assert tag_b.read_ndef()[0].payload == b"b-write"


class TestScriptedSequences:
    def test_exact_attempt_accounting(self, scenario, phone, activity):
        """Three scripted tears then success: exactly four attempts."""
        phone.port.set_link(ScriptedLink([False, False, False], default=True))
        tag = text_tag("counted")
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        operation = ref.read(timeout=10.0)
        assert wait_until(lambda: operation.outcome is OperationOutcome.SUCCEEDED, 10)
        assert operation.attempts == 4

    def test_alternating_failures_across_queue(self, scenario, phone, activity):
        phone.port.set_link(ScriptedLink([False, True, False, True], default=True))
        tag = text_tag("alt")
        scenario.put(tag, phone)
        ref = make_reference(activity, tag, phone)
        log = EventLog()
        ref.write("first", on_written=lambda r: log.append("first"), timeout=10.0)
        ref.write("second", on_written=lambda r: log.append("second"), timeout=10.0)
        assert log.wait_for_count(2, timeout=10)
        assert log.snapshot() == ["first", "second"]
