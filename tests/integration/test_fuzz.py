"""Fuzz tests: hostile bytes must produce typed errors, never crashes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NdefError, ReproError, TagError
from repro.ndef.message import NdefMessage
from repro.tags.memory import PAGE_SIZE
from repro.tags.tag import USER_START_PAGE, SimulatedTag


@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=200)
def test_ndef_decoder_never_crashes(data):
    """Arbitrary bytes decode to a message or raise NdefError -- nothing else."""
    try:
        message = NdefMessage.from_bytes(data)
    except NdefError:
        return
    # If it decoded, it must re-encode to *some* canonical form that
    # decodes to the same message (idempotence of the canonical codec).
    assert NdefMessage.from_bytes(message.to_bytes()) == message


@given(st.binary(min_size=1, max_size=144))
@settings(max_examples=200)
def test_tag_read_never_crashes_on_hostile_user_area(data):
    """A tag whose TLV area was scribbled over reads cleanly or errors cleanly."""
    tag = SimulatedTag()
    usable = min(len(data), tag.tag_type.user_bytes)
    tag.memory.write_bytes(USER_START_PAGE, data[:usable])
    try:
        tag.read_ndef()
    except ReproError:
        pass  # TagFormatError / NdefDecodeError are both acceptable


@given(st.binary(min_size=1, max_size=144))
@settings(max_examples=100)
def test_scribbled_tag_is_always_recoverable(data):
    """Whatever garbage is on the tag, a fresh write restores service."""
    from repro.ndef.mime import mime_record

    tag = SimulatedTag()
    usable = min(len(data), tag.tag_type.user_bytes)
    tag.memory.write_bytes(USER_START_PAGE, data[:usable])
    healed = NdefMessage([mime_record("a/b", b"healed")])
    tag.write_ndef(healed)
    assert tag.read_ndef() == healed


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=100)
def test_adapter_dispatch_survives_hostile_tags(data):
    """A hostile tag in the field never crashes the platform dispatch."""
    from repro.android.device import AndroidDevice
    from repro.android.activity import Activity
    from repro.android.intents import (
        ACTION_NDEF_DISCOVERED,
        ACTION_TAG_DISCOVERED,
        ACTION_TECH_DISCOVERED,
        IntentFilter,
    )
    from repro.radio.environment import RfidEnvironment

    class CatchAll(Activity):
        def on_create(self):
            self.count = 0
            self.enable_foreground_dispatch(
                [
                    IntentFilter(ACTION_NDEF_DISCOVERED),
                    IntentFilter(ACTION_TECH_DISCOVERED),
                    IntentFilter(ACTION_TAG_DISCOVERED),
                ]
            )

        def on_new_intent(self, intent):
            self.count += 1

    env = RfidEnvironment()
    phone = AndroidDevice("fuzz-phone", env)
    try:
        activity = phone.start_activity(CatchAll)
        tag = SimulatedTag()
        usable = min(len(data), tag.tag_type.user_bytes)
        if usable:
            tag.memory.write_bytes(USER_START_PAGE, data[:usable])
        env.move_tag_into_field(tag, phone.port)
        assert phone.sync()
        assert not phone.main_looper.drain_errors()
        assert activity.count >= 1  # some intent was dispatched
    finally:
        phone.shutdown()
