"""Soak tests: many tags, many references, churn, clean teardown."""

import threading

from repro.concurrent import EventLog
from repro.radio.link import LossyLink
from repro.tags.factory import make_tags

from tests.conftest import PlainNfcActivity, make_reference, text_message


class TestManyReferences:
    def test_twenty_tags_hundred_writes(self, scenario, phone, activity):
        """Every write lands on its own tag, across 20 live event loops."""
        tags = make_tags(20)
        for tag in tags:
            tag.write_ndef(text_message("seed"))
            scenario.put(tag, phone)
        references = [make_reference(activity, tag, phone) for tag in tags]
        done = EventLog()
        for round_number in range(5):
            for index, reference in enumerate(references):
                reference.write(
                    f"tag{index}-round{round_number}",
                    on_written=lambda r: done.append(1),
                    timeout=30.0,
                )
        assert done.wait_for_count(100, timeout=20)
        for index, tag in enumerate(tags):
            assert tag.read_ndef()[0].payload == f"tag{index}-round4".encode()

    def test_teardown_joins_every_loop_thread(self, scenario, phone, activity):
        """stop_all() retires every logical loop without leaking OS threads.

        Reactor references never own a thread (their loops are tasks on the
        device's shared pool); legacy ``threaded=True`` references must have
        their private thread joined.
        """
        tags = make_tags(15)
        references = [make_reference(activity, tag, phone) for tag in tags]
        threaded_tags = make_tags(3)
        threaded_refs = [
            make_reference(activity, tag, phone, threaded=True)
            for tag in threaded_tags
        ]
        threads_before = threading.active_count()
        activity.reference_factory.stop_all()
        assert all(reference.is_stopped for reference in references)
        assert all(reference._thread is None for reference in references)
        assert all(reference.is_stopped for reference in threaded_refs)
        assert all(
            not reference._thread.is_alive() for reference in threaded_refs
        )
        assert threading.active_count() <= threads_before

    def test_churn_with_lossy_link(self, scenario, phone, activity):
        """Tags cycling through a lossy field; queued work still drains."""
        phone.port.set_link(LossyLink(0.3, seed=17))
        tags = make_tags(5)
        references = [make_reference(activity, tag, phone) for tag in tags]
        done = EventLog()
        for index, reference in enumerate(references):
            reference.write(
                f"churn-{index}",
                on_written=lambda r: done.append(1),
                timeout=30.0,
            )
        # Cycle each tag in and out a few times; the writes land whenever
        # their tag happens to be present.
        import time

        for _ in range(6):
            for tag in tags:
                scenario.put(tag, phone)
            time.sleep(0.05)
            for tag in tags:
                scenario.take(tag, phone)
        for tag in tags:
            scenario.put(tag, phone)
        assert done.wait_for_count(5, timeout=20)
        for index, tag in enumerate(tags):
            assert tag.read_ndef()[0].payload == f"churn-{index}".encode()


class TestManyPhones:
    def test_five_phones_share_one_tag(self, scenario, activity):
        """Sequential exclusive access via taps; last writer wins."""
        from tests.conftest import PlainNfcActivity, text_tag

        tag = text_tag("start")
        phones = [scenario.add_phone(f"soak-{i}") for i in range(5)]
        activities = [
            scenario.start(phone, PlainNfcActivity) for phone in phones
        ]
        done = EventLog()
        for index, (phone, act) in enumerate(zip(phones, activities)):
            scenario.put(tag, phone)
            reference = make_reference(act, tag, phone)
            reference.write(
                f"phone-{index}",
                on_written=lambda r, i=index: done.append(i),
                timeout=10.0,
            )
            assert done.wait_for(lambda e, i=index: i in e, timeout=10)
            scenario.take(tag, phone)
        assert tag.read_ndef()[0].payload == b"phone-4"
        assert done.snapshot() == list(range(5))
