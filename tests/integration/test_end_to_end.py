"""End-to-end integration: full stack from radio to thing layer."""

import json

from repro.apps.wifi import WifiConfig, WifiJoinerActivity
from repro.concurrent import EventLog, wait_until
from repro.tags.factory import make_tag
from repro.things.activity import thing_mime_type


class TestWifiLifecycle:
    def test_full_tag_lifecycle_across_three_phones(self, scenario):
        """Create -> join -> update -> join again, on different phones."""
        registry = scenario.wifi_registry
        registry.add_network("LobbyWifi", "welcome")
        registry.add_network("LobbyWifi2", "welcome2")

        facility = scenario.add_phone("facility")
        guest = scenario.add_phone("guest")
        late = scenario.add_phone("late")
        facility_app = scenario.start(facility, WifiJoinerActivity, registry)
        guest_app = scenario.start(guest, WifiJoinerActivity, registry)
        late_app = scenario.start(late, WifiJoinerActivity, registry)

        # Facility initializes an empty tag.
        tag = make_tag()
        facility_app.share_with_tag(WifiConfig(facility_app, "LobbyWifi", "welcome"))
        scenario.put(tag, facility)
        assert wait_until(
            lambda: "WiFi joiner created!" in facility.toasts.snapshot()
        )
        scenario.take(tag, facility)

        # Guest joins from the tag.
        scenario.put(tag, guest)
        assert wait_until(lambda: guest_app.wifi.connected_ssid == "LobbyWifi")
        scenario.take(tag, guest)

        # Facility updates the credentials.
        scenario.put(tag, facility)
        assert wait_until(lambda: facility_app.last_config is not None)
        config = facility_app.last_config
        facility.main_looper.post(
            lambda: facility_app.rename_network(config, "LobbyWifi2", "welcome2")
        )
        assert wait_until(
            lambda: "WiFi joiner saved!" in facility.toasts.snapshot()
        )
        scenario.take(tag, facility)

        # A late guest gets the updated network.
        scenario.put(tag, late)
        assert wait_until(lambda: late_app.wifi.connected_ssid == "LobbyWifi2")

    def test_beam_chain(self, scenario):
        """Credentials hop A -> B -> C over Beam only."""
        registry = scenario.wifi_registry
        registry.add_network("chain-net", "key")
        phones = [scenario.add_phone(f"chain-{i}") for i in range(3)]
        apps = [
            scenario.start(phone, WifiJoinerActivity, registry) for phone in phones
        ]
        seed = WifiConfig(apps[0], "chain-net", "key")
        phones[0].main_looper.post(lambda: apps[0].share_with_phone(seed))
        scenario.pair(phones[0], phones[1])
        assert wait_until(lambda: apps[1].wifi.connected_ssid == "chain-net")
        scenario.unpair(phones[0], phones[1])

        forward = apps[1].last_config
        phones[1].main_looper.post(lambda: apps[1].share_with_phone(forward))
        scenario.pair(phones[1], phones[2])
        assert wait_until(lambda: apps[2].wifi.connected_ssid == "chain-net")

    def test_wire_format_is_plain_json(self, scenario):
        """The on-tag format is documented, inspectable JSON."""
        registry = scenario.wifi_registry
        phone = scenario.add_phone("fmt")
        app = scenario.start(phone, WifiJoinerActivity, registry)
        tag = make_tag()
        app.share_with_tag(WifiConfig(app, "net", "key"))
        scenario.put(tag, phone)
        assert wait_until(lambda: "WiFi joiner created!" in phone.toasts.snapshot())
        record = tag.read_ndef()[0]
        assert record.type.decode() == thing_mime_type(WifiConfig)
        assert json.loads(record.payload) == {"ssid": "net", "key": "key"}


class TestCrossLayerConsistency:
    def test_one_tag_many_apps(self, scenario):
        """Two activities on two phones track the same physical tag."""
        registry = scenario.wifi_registry
        a = scenario.add_phone("multi-a")
        b = scenario.add_phone("multi-b")
        app_a = scenario.start(a, WifiJoinerActivity, registry)
        app_b = scenario.start(b, WifiJoinerActivity, registry)

        tag = make_tag()
        app_a.share_with_tag(WifiConfig(app_a, "shared", "key"))
        scenario.put(tag, a)
        assert wait_until(lambda: "WiFi joiner created!" in a.toasts.snapshot())

        # Phone B discovers what phone A wrote.
        scenario.put(tag, b)
        assert wait_until(lambda: app_b.last_config is not None)
        assert app_b.last_config.ssid == "shared"
        # Each activity has its own unique reference to the same tag.
        assert app_a.reference_factory.lookup(tag.uid) is not None
        assert app_b.reference_factory.lookup(tag.uid) is not None
        assert app_a.reference_factory.lookup(
            tag.uid
        ) is not app_b.reference_factory.lookup(tag.uid)

    def test_queued_writes_from_two_phones_serialize_on_tag(self, scenario):
        """Last physical write wins; the tag never holds a torn mix."""
        registry = scenario.wifi_registry
        a = scenario.add_phone("writer-a")
        b = scenario.add_phone("writer-b")
        app_a = scenario.start(a, WifiJoinerActivity, registry)
        app_b = scenario.start(b, WifiJoinerActivity, registry)

        tag = make_tag()
        app_a.share_with_tag(WifiConfig(app_a, "from-a", "ka"))
        scenario.put(tag, a)
        assert wait_until(lambda: "WiFi joiner created!" in a.toasts.snapshot())

        scenario.put(tag, b)
        assert wait_until(lambda: app_b.last_config is not None)
        config_b = app_b.last_config
        b.main_looper.post(
            lambda: app_b.rename_network(config_b, "from-b", "kb")
        )
        assert wait_until(lambda: "WiFi joiner saved!" in b.toasts.snapshot())
        stored = json.loads(tag.read_ndef()[0].payload)
        assert stored["ssid"] in ("from-a", "from-b")
        assert set(stored) == {"ssid", "key"}
