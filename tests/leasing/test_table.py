"""Tests for lease-driven reference garbage collection."""

import time

import pytest

from repro.concurrent import EventLog
from repro.leasing.manager import LeaseManager
from repro.leasing.table import LeaseTable

from tests.conftest import PlainNfcActivity, make_reference, text_tag


@pytest.fixture
def setup(scenario):
    phone = scenario.add_phone("gc-phone")
    app = scenario.start(phone, PlainNfcActivity)
    return scenario, phone, app


def acquired_manager(scenario, phone, app, duration):
    tag = text_tag("gc data")
    scenario.put(tag, phone)
    reference = make_reference(app, tag, phone)
    manager = LeaseManager(reference, phone.name, drift_bound=0.0)
    log = EventLog()
    manager.acquire(duration, on_acquired=lambda lease: log.append("ok"))
    assert log.wait_for_count(1, timeout=5)
    return tag, manager


class TestCollect:
    def test_valid_leases_survive(self, setup):
        scenario, phone, app = setup
        tag, manager = acquired_manager(scenario, phone, app, duration=60.0)
        table = LeaseTable(app.reference_factory)
        table.track(manager)
        assert table.collect_expired() == []
        assert app.reference_factory.lookup(tag.uid) is not None
        assert len(table) == 1

    def test_expired_leases_collected(self, setup):
        scenario, phone, app = setup
        tag, manager = acquired_manager(scenario, phone, app, duration=0.05)
        table = LeaseTable(app.reference_factory)
        table.track(manager)
        time.sleep(0.1)
        assert table.collect_expired() == [tag.uid]
        assert app.reference_factory.lookup(tag.uid) is None
        assert manager.reference.is_stopped
        assert len(table) == 0

    def test_manager_without_lease_is_collected(self, setup):
        scenario, phone, app = setup
        tag = text_tag("never leased")
        scenario.put(tag, phone)
        reference = make_reference(app, tag, phone)
        table = LeaseTable(app.reference_factory)
        table.track(LeaseManager(reference, phone.name))
        assert table.collect_expired() == [tag.uid]

    def test_mixed_population(self, setup):
        scenario, phone, app = setup
        short_tag, short_manager = acquired_manager(scenario, phone, app, 0.05)
        long_tag, long_manager = acquired_manager(scenario, phone, app, 60.0)
        table = LeaseTable(app.reference_factory)
        table.track(short_manager)
        table.track(long_manager)
        time.sleep(0.1)
        collected = table.collect_expired()
        assert collected == [short_tag.uid]
        assert app.reference_factory.lookup(long_tag.uid) is not None

    def test_manager_lookup(self, setup):
        scenario, phone, app = setup
        tag, manager = acquired_manager(scenario, phone, app, 60.0)
        table = LeaseTable(app.reference_factory)
        table.track(manager)
        assert table.manager_for(tag.uid) is manager
        assert table.tracked_uids() == [tag.uid]
