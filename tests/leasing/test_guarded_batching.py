"""Guarded writes inside batched tap windows.

The per-port transaction scheduler drains every co-located reference's
ready work in one session. Lease-guarded raw writes are fences: the
batch must never move one across another reference's operation on the
same tag, in either direction -- the guard protocol's ordering is
exactly what the lease paid for.
"""

import pytest

from repro.concurrent import EventLog, wait_until
from repro.core.reference import TagReference
from repro.android.nfc.tech import Tag
from repro.leasing.manager import LeaseManager
from repro.ndef.mime import mime_record

from tests.conftest import PlainNfcActivity, string_converters, text_tag


@pytest.fixture
def setup(scenario):
    tag = text_tag("app data")
    phone = scenario.add_phone("guard-phone")
    app = scenario.start(phone, PlainNfcActivity)
    scenario.put(tag, phone)
    read_conv, write_conv = string_converters()
    holder = TagReference(Tag(tag, phone.port), app, read_conv, write_conv)
    other = TagReference(Tag(tag, phone.port), app, read_conv, write_conv)
    manager = LeaseManager(holder, "guard-phone", drift_bound=0.0)
    acquired = EventLog()
    manager.acquire(60.0, on_acquired=lambda lease: acquired.append(lease))
    assert acquired.wait_for_count(1, timeout=5)
    return tag, phone, holder, other, manager


class TestGuardedWriteFencing:
    def test_guarded_write_keeps_its_place_between_foreign_ops(
        self, setup, scenario
    ):
        """other.w1 | GUARDED | other.w2, all drained in ONE window."""
        tag, phone, holder, other, manager = setup
        scenario.take(tag, phone)
        assert wait_until(lambda: not holder.is_connected)

        order = EventLog()
        other.write("before", on_written=lambda _r: order.append("before"))
        manager.write_guarded(
            [mime_record("application/guarded", b"payload")],
            on_written=lambda: order.append("guarded"),
        )
        other.write("after", on_written=lambda _r: order.append("after"))

        connects_before = phone.port.connects
        scenario.put(tag, phone)
        assert order.wait_for_count(3)
        assert order.snapshot() == ["before", "guarded", "after"]
        # One shared connect round for all three, fences included.
        assert phone.port.connects - connects_before == 1

    def test_merged_renewals_settle_at_their_enqueue_slot(
        self, setup, scenario
    ):
        """Renewals tail-merge among themselves (protocol merge hook) but
        the surviving write still lands between the foreign operations
        that bracketed the first renewal."""
        tag, phone, holder, other, manager = setup
        scenario.take(tag, phone)
        assert wait_until(lambda: not holder.is_connected)

        order = EventLog()
        other.write("b1", on_written=lambda _r: order.append("b1"))
        for index in range(5):
            manager.renew(
                60.0, on_renewed=lambda lease, i=index: order.append(("renew", i))
            )
        other.write("b2", on_written=lambda _r: order.append("b2"))

        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert order.wait_for_count(7)
        assert order.snapshot() == [
            "b1",
            ("renew", 0),
            ("renew", 1),
            ("renew", 2),
            ("renew", 3),
            ("renew", 4),
            "b2",
        ]
        # Five renewals collapsed to one physical write; the bracketing
        # foreign writes stayed physical.
        assert holder.protocol_merges == 4
        assert phone.port.write_attempts - writes_before == 3
