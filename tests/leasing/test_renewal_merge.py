"""Renewal coalescing: away-time renewals collapse under the guard.

A renewal is a replacement record -- only the latest expiry matters --
so the manager issues it through the reference's protocol merge hook
(``write_raw(merge_key=...)``). While the tag is out of range,
successive renewals tail-merge and one physical write lands the latest
expiry on redetection. Guarded data writes, releases, and reads are
fences and never merge with a renewal.
"""

import time

import pytest

from repro.concurrent import EventLog, wait_until
from repro.leasing.lease import split_lease
from repro.leasing.manager import LeaseManager
from repro.ndef.mime import mime_record

from tests.conftest import PlainNfcActivity, make_reference, text_tag


@pytest.fixture
def setup(scenario):
    tag = text_tag("app data")
    phone = scenario.add_phone("merge-phone")
    app = scenario.start(phone, PlainNfcActivity)
    scenario.put(tag, phone)
    ref = make_reference(app, tag, phone)
    manager = LeaseManager(ref, "merge-phone", drift_bound=0.0)
    return tag, phone, ref, manager


def acquire(manager, duration=60.0):
    log = EventLog()
    manager.acquire(duration, on_acquired=lambda lease: log.append(lease))
    assert log.wait_for_count(1, timeout=5)
    return log.snapshot()[0]


class TestRenewalMerge:
    def test_away_time_renewals_collapse_to_one_write(self, setup, scenario):
        tag, phone, ref, manager = setup
        acquire(manager, duration=60.0)
        scenario.take(tag, phone)
        assert wait_until(lambda: not ref.is_connected)

        renewed = EventLog()
        for _ in range(10):
            manager.renew(60.0, on_renewed=lambda lease: renewed.append(lease))
        assert ref.pending_count == 10  # logically all still pending
        assert ref.protocol_merges == 9
        assert manager.stats_snapshot()[3] == 9  # renewals_merged

        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert renewed.wait_for_count(10, timeout=5)
        assert phone.port.write_attempts - writes_before == 1
        assert manager.renewals == 10  # every renewal settled success

        # The held lease carries the *latest* renewal's expiry, and the
        # tag agrees.
        leases = renewed.snapshot()
        latest = max(lease.expires_at for lease in leases)
        assert manager.held_lease.expires_at == latest
        on_tag, records = split_lease(tag.read_ndef())
        assert on_tag.expires_at == latest
        assert records  # application data rode along

    def test_guarded_data_write_is_a_fence(self, setup, scenario):
        """renew | write_guarded | renew: three physical writes, data kept."""
        tag, phone, ref, manager = setup
        acquire(manager, duration=60.0)
        scenario.take(tag, phone)
        assert wait_until(lambda: not ref.is_connected)

        log = EventLog()
        manager.renew(60.0, on_renewed=lambda lease: log.append("n1"))
        manager.write_guarded(
            [mime_record("a/b", b"guarded payload")],
            on_written=lambda: log.append("data"),
        )
        manager.renew(60.0, on_renewed=lambda lease: log.append("n2"))
        assert ref.protocol_merges == 0
        assert manager.stats_snapshot()[3] == 0

        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        assert log.wait_for_count(3, timeout=5)
        assert log.snapshot() == ["n1", "data", "n2"]
        assert phone.port.write_attempts - writes_before == 3
        # The second renewal re-wrote the *guarded* data, not the state
        # cached when renew was called.
        on_tag, records = split_lease(tag.read_ndef())
        assert on_tag is not None and on_tag.held_by("merge-phone")
        assert records[0].payload == b"guarded payload"

    def test_release_never_merges_with_renewals(self, setup, scenario):
        tag, phone, ref, manager = setup
        acquire(manager, duration=60.0)
        scenario.take(tag, phone)
        assert wait_until(lambda: not ref.is_connected)

        log = EventLog()
        manager.renew(60.0, on_renewed=lambda lease: log.append("renewed"))
        manager.release(on_released=lambda: log.append("released"))
        assert ref.protocol_merges == 0
        assert not manager.holds_valid_lease  # dropped eagerly

        scenario.put(tag, phone)
        assert log.wait_for_count(2, timeout=5)
        assert log.snapshot() == ["renewed", "released"]
        # The renewal that settled mid-release did not resurrect it.
        assert manager.held_lease is None
        on_tag, records = split_lease(tag.read_ndef())
        assert on_tag is None and records

    def test_renewal_deadline_capped_by_guard(self, setup, scenario):
        """A renewal that cannot land while the lease is still valid
        fails instead of landing late over a successor's lease."""
        tag, phone, ref, manager = setup
        held = acquire(manager, duration=0.3)
        scenario.take(tag, phone)
        assert wait_until(lambda: not ref.is_connected)

        log = EventLog()
        manager.renew(
            60.0,
            on_renewed=lambda lease: log.append("renewed"),
            on_failed=lambda: log.append("failed"),
            timeout=30.0,
        )
        # The operation's timeout was capped at the guard, not 30s.
        assert log.wait_for(lambda e: "failed" in e, timeout=5)
        time.sleep(0.05)
        writes_before = phone.port.write_attempts
        scenario.put(tag, phone)
        time.sleep(0.1)
        assert phone.port.write_attempts == writes_before  # never transmitted
        on_tag, _ = split_lease(tag.read_ndef())
        assert on_tag.expires_at == held.expires_at  # tag untouched

    def test_renew_after_local_expiry_fails_without_radio(self, setup, scenario):
        tag, phone, ref, manager = setup
        acquire(manager, duration=0.1)
        time.sleep(0.15)
        log = EventLog()
        writes_before = phone.port.write_attempts
        manager.renew(60.0, on_failed=lambda: log.append("failed"))
        assert log.wait_for_count(1, timeout=5)
        assert phone.port.write_attempts == writes_before
        assert manager.held_lease is None  # local state cleaned up


class TestStatsIntegrity:
    def test_concurrent_renewals_count_exactly(self, setup):
        import threading

        tag, phone, ref, manager = setup
        acquire(manager, duration=60.0)
        renewed = EventLog()
        threads_n, per_thread = 4, 25

        def hammer():
            for _ in range(per_thread):
                manager.renew(60.0, on_renewed=lambda lease: renewed.append(1))

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = threads_n * per_thread
        assert renewed.wait_for_count(total, timeout=10)
        acquisitions, denials, renewals, merged = manager.stats_snapshot()
        assert (acquisitions, denials, renewals) == (1, 0, total)
        # Merges are opportunistic (scheduling-dependent), but every
        # merged renewal still settled success above.
        assert 0 <= merged < total
        assert ref.protocol_merges == merged
