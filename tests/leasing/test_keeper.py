"""Tests for automatic lease renewal."""

import time

import pytest

from repro.concurrent import EventLog, wait_until
from repro.leasing.keeper import LeaseKeeper
from repro.leasing.manager import LeaseManager

from tests.conftest import PlainNfcActivity, make_reference, text_tag


@pytest.fixture
def setup(scenario):
    tag = text_tag("kept")
    phone_a = scenario.add_phone("keeper-a")
    phone_b = scenario.add_phone("keeper-b")
    app_a = scenario.start(phone_a, PlainNfcActivity)
    app_b = scenario.start(phone_b, PlainNfcActivity)
    scenario.put(tag, phone_a)
    scenario.put(tag, phone_b)
    manager_a = LeaseManager(
        make_reference(app_a, tag, phone_a), "keeper-a", drift_bound=0.0
    )
    manager_b = LeaseManager(
        make_reference(app_b, tag, phone_b), "keeper-b", drift_bound=0.0
    )
    return scenario, tag, manager_a, manager_b


class TestKeeper:
    def test_keeps_lease_beyond_original_duration(self, setup):
        _, _, manager_a, manager_b = setup
        keeper = LeaseKeeper(manager_a, duration=0.15)
        log = EventLog()
        keeper.start(on_acquired=lambda lease: log.append("acquired"))
        assert log.wait_for_count(1, timeout=5)
        # Wait for well over the original duration: renewals kept it alive.
        time.sleep(0.4)
        assert keeper.is_running
        assert keeper.renewal_count >= 1
        assert manager_a.holds_valid_lease
        # The other device is still locked out.
        denied = EventLog()
        manager_b.acquire(1.0, on_denied=lambda: denied.append("denied"))
        assert denied.wait_for_count(1, timeout=5)
        keeper.stop()

    def test_stop_releases_by_default(self, setup):
        _, _, manager_a, manager_b = setup
        keeper = LeaseKeeper(manager_a, duration=0.2)
        log = EventLog()
        keeper.start(on_acquired=lambda lease: log.append("ok"))
        assert log.wait_for_count(1, timeout=5)
        keeper.stop()
        assert not keeper.is_running
        # After the release the other device acquires promptly.
        acquired = EventLog()
        assert wait_until(
            lambda: (
                manager_b.acquire(
                    0.5, on_acquired=lambda lease: acquired.append("got")
                ),
                acquired.wait_for_count(1, timeout=1),
            )[1],
            timeout=5,
        )

    def test_start_denied_when_lease_held_elsewhere(self, setup):
        _, _, manager_a, manager_b = setup
        first = EventLog()
        manager_b.acquire(30.0, on_acquired=lambda lease: first.append("b"))
        assert first.wait_for_count(1, timeout=5)
        keeper = LeaseKeeper(manager_a, duration=0.2)
        denied = EventLog()
        keeper.start(on_denied=lambda: denied.append("denied"))
        assert denied.wait_for_count(1, timeout=5)
        assert not keeper.is_running

    def test_double_start_is_noop(self, setup):
        _, _, manager_a, _ = setup
        keeper = LeaseKeeper(manager_a, duration=0.2)
        log = EventLog()
        keeper.start(on_acquired=lambda lease: log.append("a"))
        keeper.start(on_acquired=lambda lease: log.append("b"))
        assert log.wait_for_count(1, timeout=5)
        time.sleep(0.05)
        assert log.snapshot() == ["a"]
        keeper.stop()

    def test_invalid_duration_rejected(self, setup):
        _, _, manager_a, _ = setup
        with pytest.raises(ValueError):
            LeaseKeeper(manager_a, duration=0)


class TestKeeperLifecycle:
    def test_stale_tick_after_stop_is_ignored(self, setup):
        """stop() cannot unpost the delayed tick, so the tick must
        recognise itself as stale (generation mismatch) and no-op."""
        _, _, manager_a, _ = setup
        keeper = LeaseKeeper(manager_a, duration=30.0)
        log = EventLog()
        keeper.start(on_acquired=lambda lease: log.append("ok"))
        assert log.wait_for_count(1, timeout=5)
        stale = keeper._generation
        keeper.stop(release=False)
        renewals_before = manager_a.renewals
        keeper._renew_now(stale)  # the armed tick fires after the stop
        time.sleep(0.05)
        assert manager_a.renewals == renewals_before  # no renewal issued
        assert keeper.renewal_count == 0
        assert not keeper.is_running

    def test_stop_then_start_runs_a_single_renewal_chain(self, setup):
        """The seeded bug: the old post_delayed callback survived stop()
        and spawned a second chain after restart, doubling the cadence."""
        _, _, manager_a, _ = setup
        issued = EventLog()
        inner_renew = manager_a.renew

        def counting_renew(duration, **kwargs):
            issued.append(time.monotonic())
            inner_renew(duration, **kwargs)

        manager_a.renew = counting_renew
        keeper = LeaseKeeper(manager_a, duration=0.2)
        for _ in range(3):  # each cycle leaves a tick armed at stop time
            log = EventLog()
            keeper.start(on_acquired=lambda lease: log.append("ok"))
            assert log.wait_for_count(1, timeout=5)
            keeper.stop()
        log = EventLog()
        keeper.start(on_acquired=lambda lease: log.append("ok"))
        assert log.wait_for_count(1, timeout=5)
        before = len(issued.snapshot())  # warm-up cycles may have ticked
        time.sleep(0.45)  # ~4 ticks of the single surviving chain
        keeper.stop()
        issued_now = len(issued.snapshot()) - before
        # One chain ticks every 0.1s: ~4 renewals in the window. Four
        # leaked chains (the bug) would issue ~16.
        assert 2 <= issued_now <= 7
        # Late-settling renewals after stop() count for the manager but
        # not for the (halted) keeper.
        assert keeper.renewal_count <= manager_a.renewals
        assert not keeper.is_running

    def test_on_lost_fires_exactly_once(self, setup):
        """When the tag stays away past expiry, the queued (and merged)
        renewals all fail -- the user still hears about it once."""
        scenario, tag, manager_a, _ = setup
        lost = EventLog()
        keeper = LeaseKeeper(manager_a, duration=0.3, on_lost=lambda: lost.append("lost"))
        log = EventLog()
        keeper.start(on_acquired=lambda lease: log.append("ok"))
        assert log.wait_for_count(1, timeout=5)
        scenario.take(tag, scenario.phones["keeper-a"])
        assert wait_until(lambda: not manager_a.reference.is_connected)
        assert lost.wait_for_count(1, timeout=5)
        time.sleep(0.4)  # several more tick periods
        assert lost.snapshot() == ["lost"]
        assert not keeper.is_running

    def test_restart_after_denial(self, setup):
        _, _, manager_a, manager_b = setup
        held = EventLog()
        manager_b.acquire(0.3, on_acquired=lambda lease: held.append("b"))
        assert held.wait_for_count(1, timeout=5)
        keeper = LeaseKeeper(manager_a, duration=0.5)
        denied = EventLog()
        keeper.start(on_denied=lambda: denied.append("denied"))
        assert denied.wait_for_count(1, timeout=5)
        assert not keeper.is_running
        time.sleep(0.35)  # let B's lease lapse
        acquired = EventLog()
        keeper.start(on_acquired=lambda lease: acquired.append("a"))
        assert acquired.wait_for_count(1, timeout=5)
        assert keeper.is_running
        keeper.stop()
