"""Tests for the leasing protocol: acquire/renew/release/guarded writes."""

import time

import pytest

from repro.concurrent import EventLog
from repro.core.converters import IdentityConverters
from repro.errors import LeaseError
from repro.leasing.manager import LeaseManager
from repro.ndef.mime import mime_record

from tests.conftest import PlainNfcActivity, make_reference, text_tag


@pytest.fixture
def setup(scenario):
    """Two phones, both seeing the same tag, each with its own manager."""
    tag = text_tag("shared data")
    phone_a = scenario.add_phone("phone-a")
    phone_b = scenario.add_phone("phone-b")
    app_a = scenario.start(phone_a, PlainNfcActivity)
    app_b = scenario.start(phone_b, PlainNfcActivity)
    scenario.put(tag, phone_a)
    scenario.put(tag, phone_b)
    ref_a = make_reference(app_a, tag, phone_a)
    ref_b = make_reference(app_b, tag, phone_b)
    manager_a = LeaseManager(ref_a, "phone-a", drift_bound=0.0)
    manager_b = LeaseManager(ref_b, "phone-b", drift_bound=0.0)
    return tag, manager_a, manager_b


def acquire(manager, duration=5.0, timeout=None):
    log = EventLog()
    manager.acquire(
        duration,
        on_acquired=lambda lease: log.append(("acquired", lease)),
        on_denied=lambda: log.append(("denied", None)),
        timeout=timeout,
    )
    assert log.wait_for_count(1, timeout=5)
    return log.snapshot()[0][0]


class TestAcquire:
    def test_first_acquire_succeeds(self, setup):
        _, manager_a, _ = setup
        assert acquire(manager_a) == "acquired"
        assert manager_a.holds_valid_lease
        assert manager_a.acquisitions == 1

    def test_second_device_denied_while_held(self, setup):
        _, manager_a, manager_b = setup
        acquire(manager_a)
        assert acquire(manager_b) == "denied"
        assert manager_b.denials == 1
        assert not manager_b.holds_valid_lease

    def test_reacquire_own_lease_allowed(self, setup):
        _, manager_a, _ = setup
        acquire(manager_a)
        assert acquire(manager_a) == "acquired"

    def test_acquire_after_expiry_succeeds(self, setup):
        _, manager_a, manager_b = setup
        acquire(manager_a, duration=0.1)
        time.sleep(0.15)
        assert acquire(manager_b) == "acquired"

    def test_lease_survives_on_tag(self, setup):
        """The lock lives in tag memory, not in device state."""
        tag, manager_a, _ = setup
        acquire(manager_a)
        from repro.leasing.lease import split_lease

        lease, records = split_lease(tag.read_ndef())
        assert lease is not None
        assert lease.device_id == "phone-a"
        assert records  # application data still present

    def test_application_data_preserved(self, setup):
        tag, manager_a, _ = setup
        before = tag.read_ndef()[0].payload
        acquire(manager_a)
        assert tag.read_ndef()[0].payload == before

    def test_non_positive_duration_rejected(self, setup):
        _, manager_a, _ = setup
        with pytest.raises(LeaseError):
            manager_a.acquire(0)

    def test_acquire_times_out_when_tag_away(self, scenario, setup):
        tag, manager_a, _ = setup
        scenario.take(tag, scenario.phones["phone-a"])
        log = EventLog()
        manager_a.acquire(
            5.0, on_denied=lambda: log.append("denied"), timeout=0.15
        )
        assert log.wait_for_count(1, timeout=3)


class TestRelease:
    def test_release_clears_tag_and_state(self, setup):
        tag, manager_a, manager_b = setup
        acquire(manager_a)
        log = EventLog()
        manager_a.release(on_released=lambda: log.append("released"))
        assert log.wait_for_count(1, timeout=5)
        assert not manager_a.holds_valid_lease
        from repro.leasing.lease import split_lease

        lease, records = split_lease(tag.read_ndef())
        assert lease is None and records

    def test_other_device_can_acquire_after_release(self, setup):
        _, manager_a, manager_b = setup
        acquire(manager_a)
        log = EventLog()
        manager_a.release(on_released=lambda: log.append("ok"))
        assert log.wait_for_count(1, timeout=5)
        assert acquire(manager_b) == "acquired"

    def test_release_of_foreign_lease_is_local_only(self, setup):
        tag, manager_a, manager_b = setup
        acquire(manager_a)
        log = EventLog()
        manager_b.release(on_released=lambda: log.append("released"))
        assert log.wait_for_count(1, timeout=5)
        # phone-a's lease is untouched on the tag.
        from repro.leasing.lease import split_lease

        lease, _ = split_lease(tag.read_ndef())
        assert lease is not None and lease.device_id == "phone-a"


class TestRenew:
    def test_renew_extends_expiry(self, setup):
        _, manager_a, _ = setup
        acquire(manager_a, duration=5.0)
        first_expiry = manager_a.held_lease.expires_at
        log = EventLog()
        manager_a.renew(60.0, on_renewed=lambda lease: log.append(lease))
        assert log.wait_for_count(1, timeout=5)
        assert manager_a.held_lease.expires_at > first_expiry
        assert manager_a.renewals == 1
        assert manager_a.acquisitions == 1  # renewal did not double-count

    def test_renew_without_lease_fails_immediately(self, setup):
        _, manager_a, _ = setup
        log = EventLog()
        manager_a.renew(5.0, on_failed=lambda: log.append("failed"))
        assert log.wait_for_count(1)


class TestGuardedWrites:
    def test_holder_can_write(self, setup):
        tag, manager_a, _ = setup
        acquire(manager_a)
        log = EventLog()
        manager_a.write_guarded(
            [mime_record("a/b", b"guarded update")],
            on_written=lambda: log.append("written"),
        )
        assert log.wait_for_count(1, timeout=5)
        assert tag.read_ndef()[0].payload == b"guarded update"
        # The lease record is still on the tag.
        from repro.leasing.lease import split_lease

        lease, _ = split_lease(tag.read_ndef())
        assert lease is not None

    def test_non_holder_denied_locally(self, setup):
        tag, manager_a, manager_b = setup
        acquire(manager_a)
        before = tag.read_ndef()
        log = EventLog()
        manager_b.write_guarded(
            [mime_record("a/b", b"intrusion")],
            on_denied=lambda: log.append("denied"),
        )
        assert log.wait_for_count(1)
        assert tag.read_ndef() == before

    def test_expired_holder_denied(self, setup):
        _, manager_a, _ = setup
        acquire(manager_a, duration=0.05)
        time.sleep(0.1)
        log = EventLog()
        manager_a.write_guarded(
            [mime_record("a/b", b"too late")],
            on_denied=lambda: log.append("denied"),
        )
        assert log.wait_for_count(1)
        assert manager_a.held_lease is None  # local state cleaned up


class TestDriftBound:
    def test_drift_bound_must_be_non_negative(self, setup):
        tag, manager_a, _ = setup
        with pytest.raises(LeaseError):
            LeaseManager(manager_a.reference, "x", drift_bound=-0.5)

    def test_foreign_lease_honoured_through_drift_window(self, scenario):
        tag = text_tag("data")
        phone_a = scenario.add_phone("drift-a")
        phone_b = scenario.add_phone("drift-b")
        app_a = scenario.start(phone_a, PlainNfcActivity)
        app_b = scenario.start(phone_b, PlainNfcActivity)
        scenario.put(tag, phone_a)
        scenario.put(tag, phone_b)
        manager_a = LeaseManager(
            make_reference(app_a, tag, phone_a), "drift-a", drift_bound=0.0
        )
        manager_b = LeaseManager(
            make_reference(app_b, tag, phone_b), "drift-b", drift_bound=10.0
        )
        acquire(manager_a, duration=0.05)
        time.sleep(0.1)
        # Expired in real time, but B's generous drift bound still honours it.
        assert acquire(manager_b) == "denied"
