"""Unit tests for the lease record codec and expiry semantics."""

import pytest

from repro.clock import ManualClock
from repro.errors import LeaseError
from repro.leasing.lease import Lease, join_lease, split_lease
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record, message_mime_type


def make_lease(expires_at=10.0, device="phone-a", acquired_at=0.0):
    return Lease(device_id=device, acquired_at=acquired_at, expires_at=expires_at)


class TestCodec:
    def test_record_roundtrip(self):
        lease = make_lease()
        assert Lease.from_record(lease.to_record()) == lease

    def test_wrong_record_type_rejected(self):
        with pytest.raises(LeaseError):
            Lease.from_record(mime_record("a/b", b"{}"))

    def test_malformed_payload_rejected(self):
        record = mime_record("application/vnd.morena.lease", b"not json")
        with pytest.raises(LeaseError):
            Lease.from_record(record)

    def test_missing_field_rejected(self):
        record = mime_record(
            "application/vnd.morena.lease", b'{"device_id": "x"}'
        )
        with pytest.raises(LeaseError):
            Lease.from_record(record)

    def test_duration(self):
        assert make_lease(expires_at=12.0, acquired_at=2.0).duration == 10.0


class TestExpiry:
    def test_not_expired_before_deadline(self):
        clock = ManualClock(start=5.0)
        lease = make_lease(expires_at=10.0)
        assert not lease.is_expired(clock, drift_bound=0.0, ours=True)
        assert not lease.is_expired(clock, drift_bound=0.0, ours=False)

    def test_expired_after_deadline(self):
        clock = ManualClock(start=11.0)
        lease = make_lease(expires_at=10.0)
        assert lease.is_expired(clock, drift_bound=0.0, ours=True)
        assert lease.is_expired(clock, drift_bound=0.0, ours=False)

    def test_drift_bound_is_conservative_both_ways(self):
        lease = make_lease(expires_at=10.0)
        clock = ManualClock(start=9.5)
        # Our own lease: give up early.
        assert lease.is_expired(clock, drift_bound=1.0, ours=True)
        # A foreign lease: honour it longer.
        clock_late = ManualClock(start=10.5)
        assert not lease.is_expired(clock_late, drift_bound=1.0, ours=False)
        clock_later = ManualClock(start=11.5)
        assert lease.is_expired(clock_later, drift_bound=1.0, ours=False)

    def test_negative_drift_rejected(self):
        lease = make_lease()
        with pytest.raises(LeaseError):
            lease.is_expired(ManualClock(), drift_bound=-1, ours=True)

    def test_held_by(self):
        lease = make_lease(device="me")
        assert lease.held_by("me")
        assert not lease.held_by("you")


class TestSplitJoin:
    def test_split_message_without_lease(self):
        message = NdefMessage([mime_record("a/b", b"data")])
        lease, records = split_lease(message)
        assert lease is None
        assert records == [message[0]]

    def test_join_then_split(self):
        lease = make_lease()
        data = [mime_record("a/b", b"payload")]
        message = join_lease(lease, data)
        recovered, records = split_lease(message)
        assert recovered == lease
        assert records == data

    def test_lease_record_goes_last(self):
        """So the intent-dispatch MIME type stays the application's."""
        lease = make_lease()
        message = join_lease(lease, [mime_record("a/b", b"x")])
        assert message_mime_type(message) == "a/b"
        assert message[-1].type == b"application/vnd.morena.lease"

    def test_join_without_lease_keeps_records(self):
        data = [mime_record("a/b", b"x")]
        assert list(join_lease(None, data)) == data

    def test_join_nothing_gives_empty_message(self):
        assert join_lease(None, []).is_empty

    def test_join_lease_only(self):
        message = join_lease(make_lease(), [])
        lease, records = split_lease(message)
        assert lease is not None and records == []
