"""Tests for the experiment harness: scenario, user, workload, report."""

import pytest

from repro.harness.report import Series, Table
from repro.harness.scenario import Scenario
from repro.harness.user import SimulatedUser
from repro.harness.workload import TapWorkload, make_config_tags


class TestScenario:
    def test_context_manager_tears_down(self):
        with Scenario() as scenario:
            phone = scenario.add_phone("p")
        assert not phone.main_looper.alive

    def test_add_tag_records_population(self):
        with Scenario() as scenario:
            tag = scenario.add_tag("NTAG213")
            assert scenario.tags == [tag]
            assert tag.tag_type.name == "NTAG213"

    def test_tap_shorthand(self):
        with Scenario() as scenario:
            phone = scenario.add_phone("p")
            tag = scenario.add_tag()
            with scenario.tap(tag, phone):
                assert scenario.env.tag_in_field(tag, phone.port)
            assert not scenario.env.tag_in_field(tag, phone.port)

    def test_pair_unpair(self):
        with Scenario() as scenario:
            a = scenario.add_phone("a")
            b = scenario.add_phone("b")
            scenario.pair(a, b)
            assert scenario.env.in_beam_range(a.port, b.port)
            scenario.unpair(a, b)
            assert not scenario.env.in_beam_range(a.port, b.port)

    def test_sync_all(self):
        with Scenario() as scenario:
            scenario.add_phone("a")
            scenario.add_phone("b")
            assert scenario.sync_all()


class TestSimulatedUser:
    def test_tap_until_counts_taps(self):
        with Scenario() as scenario:
            phone = scenario.add_phone("p")
            tag = scenario.add_tag()
            user = SimulatedUser(
                scenario.env, phone, hold_seconds=0.01, pause_seconds=0.0
            )
            outcomes = iter([False, False, True])
            stats = user.tap_until(tag, done=lambda: next(outcomes), max_taps=10)
            assert stats.succeeded
            assert stats.taps == 3
            assert len(stats.tap_log) == 3

    def test_tap_until_gives_up(self):
        with Scenario() as scenario:
            phone = scenario.add_phone("p")
            tag = scenario.add_tag()
            user = SimulatedUser(
                scenario.env, phone, hold_seconds=0.005, pause_seconds=0.0
            )
            stats = user.tap_until(tag, done=lambda: False, max_taps=3)
            assert not stats.succeeded
            assert stats.taps == 3

    def test_hold_until(self):
        with Scenario() as scenario:
            phone = scenario.add_phone("p")
            tag = scenario.add_tag()
            user = SimulatedUser(scenario.env, phone)
            seen = []

            def done():
                seen.append(scenario.env.tag_in_field(tag, phone.port))
                return len(seen) >= 2

            stats = user.hold_until(tag, done=done, max_seconds=2.0)
            assert stats.succeeded
            assert all(seen)
            assert not scenario.env.tag_in_field(tag, phone.port)


class TestWorkload:
    def test_seeded_workloads_are_identical(self):
        a = TapWorkload(tag_count=5, tap_count=20, seed=7)
        b = TapWorkload(tag_count=5, tap_count=20, seed=7)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = TapWorkload(tag_count=5, tap_count=20, seed=1)
        b = TapWorkload(tag_count=5, tap_count=20, seed=2)
        assert a.events != b.events

    def test_timestamps_non_decreasing(self):
        workload = TapWorkload(tag_count=3, tap_count=50, seed=0)
        times = [event.at_seconds for event in workload]
        assert times == sorted(times)

    def test_tag_indices_in_range(self):
        workload = TapWorkload(tag_count=4, tap_count=100, seed=3)
        assert all(0 <= event.tag_index < 4 for event in workload)

    def test_zero_tags_rejected(self):
        with pytest.raises(ValueError):
            TapWorkload(tag_count=0, tap_count=1)

    def test_make_config_tags(self):
        tags = make_config_tags(3, seed=0)
        assert len(tags) == 3
        payloads = [tag.read_ndef()[0].payload for tag in tags]
        assert len(set(payloads)) == 3
        assert b"net-0000" in payloads[0]

    def test_make_config_tags_deterministic(self):
        first = [t.read_ndef()[0].payload for t in make_config_tags(2, seed=5)]
        second = [t.read_ndef()[0].payload for t in make_config_tags(2, seed=5)]
        assert first == second


class TestReport:
    def test_table_renders_aligned(self):
        table = Table("demo", ["name", "value"])
        table.add_row("short", 1)
        table.add_row("a-much-longer-name", 2.5)
        text = table.render()
        assert "demo" in text
        assert "a-much-longer-name" in text
        assert "2.50" in text

    def test_table_rejects_wrong_arity(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_series_renders_points(self):
        series = Series("curve", x_label="loss", y_label="taps")
        series.add(0.1, 2)
        series.add(0.5, 7)
        text = series.render()
        assert "curve" in text and "0.5" in text and "7" in text


class TestSpatialScenario:
    def test_spatial_flag_builds_spatial_environment(self):
        from repro.radio.geometry import SpatialEnvironment

        with Scenario(spatial=True) as scenario:
            assert isinstance(scenario.env, SpatialEnvironment)

    def test_spatial_scenario_drives_geometry(self):
        with Scenario(spatial=True) as scenario:
            phone = scenario.add_phone("geo")
            tag = scenario.add_tag()
            scenario.env.place_phone(phone.port, 0.0, 0.0)
            scenario.env.place_tag(tag, 0.01, 0.0)
            assert scenario.env.tag_in_field(tag, phone.port)
            scenario.env.move_tag(tag, 1.0, 0.0)
            assert not scenario.env.tag_in_field(tag, phone.port)

    def test_default_scenario_stays_flat(self):
        from repro.radio.geometry import SpatialEnvironment

        with Scenario() as scenario:
            assert not isinstance(scenario.env, SpatialEnvironment)


class TestPayloadGenerator:
    def test_make_things_payloads_shape(self):
        from repro.harness.workload import make_things_payloads

        payloads = make_things_payloads(count=5, size_bytes=32, seed=1)
        assert len(payloads) == 5
        assert all(len(p) == 32 for p in payloads)

    def test_make_things_payloads_seeded(self):
        from repro.harness.workload import make_things_payloads

        assert make_things_payloads(3, 16, seed=9) == make_things_payloads(
            3, 16, seed=9
        )
        assert make_things_payloads(3, 16, seed=9) != make_things_payloads(
            3, 16, seed=10
        )
