"""Tests for workload replay and radio telemetry."""

import pytest

from repro.concurrent import EventLog
from repro.harness.executor import WorkloadExecutor
from repro.harness.stats import collect_port_stats, radio_report
from repro.harness.workload import TapWorkload
from repro.radio.link import LossyLink
from repro.tags.factory import make_tags

from tests.conftest import make_reference, text_tag


class TestWorkloadExecutor:
    def test_replays_every_tap(self, scenario, phone):
        tags = make_tags(3)
        workload = TapWorkload(
            tag_count=3, tap_count=12, seed=4, inter_tap=(0, 0.01), hold=(0.001, 0.002)
        )
        executor = WorkloadExecutor(scenario.env, phone, tags, time_scale=1.0)
        stats = executor.run(workload)
        assert stats.taps == 12
        assert sum(stats.taps_per_tag) == 12
        # All tags end out of the field.
        assert all(
            not scenario.env.tag_in_field(tag, phone.port) for tag in tags
        )

    def test_replay_drives_middleware(self, scenario, phone, activity):
        tag = text_tag("workload")
        reference = make_reference(activity, tag, phone)
        done = EventLog()
        reference.write("replayed", on_written=lambda r: done.append("ok"), timeout=30.0)
        workload = TapWorkload(
            tag_count=1, tap_count=3, seed=1, inter_tap=(0, 0.01), hold=(0.05, 0.06)
        )
        WorkloadExecutor(scenario.env, phone, [tag]).run(workload)
        assert done.wait_for_count(1, timeout=5)
        assert tag.read_ndef()[0].payload == b"replayed"

    def test_time_scale_compresses_real_time(self, scenario, phone):
        import time

        tags = make_tags(1)
        workload = TapWorkload(
            tag_count=1, tap_count=5, seed=2, inter_tap=(0.5, 0.5), hold=(0.2, 0.2)
        )
        executor = WorkloadExecutor(scenario.env, phone, tags, time_scale=0.01)
        start = time.monotonic()
        executor.run(workload)
        assert time.monotonic() - start < 1.0  # ~3.5 virtual seconds compressed

    def test_invalid_construction_rejected(self, scenario, phone):
        with pytest.raises(ValueError):
            WorkloadExecutor(scenario.env, phone, [], time_scale=1.0)
        with pytest.raises(ValueError):
            WorkloadExecutor(scenario.env, phone, make_tags(1), time_scale=0)

    def test_workload_larger_than_population_rejected(self, scenario, phone):
        workload = TapWorkload(tag_count=5, tap_count=10, seed=0)
        executor = WorkloadExecutor(scenario.env, phone, make_tags(1))
        with pytest.raises(IndexError):
            executor.run(workload)


class TestRadioStats:
    def test_counters_reflect_operations(self, scenario, phone):
        tag = text_tag("counted")
        scenario.put(tag, phone)
        phone.port.read_ndef(tag)
        phone.port.read_ndef(tag)
        stats = collect_port_stats(scenario.env)
        mine = next(s for s in stats if s.name == phone.name)
        assert mine.read_attempts == 2
        assert mine.write_attempts == 0

    def test_lossy_link_statistics_surface(self, scenario):
        phone = scenario.add_phone("lossy", link=LossyLink(1.0, seed=0))
        tag = text_tag("x")
        scenario.put(tag, phone)
        from repro.errors import TagLostError

        for _ in range(4):
            with pytest.raises(TagLostError):
                phone.port.read_ndef(tag)
        mine = next(
            s for s in collect_port_stats(scenario.env) if s.name == "lossy"
        )
        assert mine.link_attempts == 4
        assert mine.observed_loss == 1.0

    def test_perfect_link_has_no_loss_stats(self, scenario, phone):
        mine = next(
            s for s in collect_port_stats(scenario.env) if s.name == phone.name
        )
        assert mine.link_attempts is None
        assert mine.observed_loss is None

    def test_report_renders_all_ports(self, scenario, phone):
        scenario.add_phone("second")
        text = radio_report(scenario.env).render()
        assert phone.name in text
        assert "second" in text
        assert "observed loss" in text

    def test_connect_counters_and_batched_share(self, scenario, phone):
        tag = text_tag("counted")
        scenario.put(tag, phone)
        phone.port.read_ndef(tag)
        phone.port.make_read_only(tag)
        mine = next(
            s for s in collect_port_stats(scenario.env) if s.name == phone.name
        )
        assert mine.lock_attempts == 1
        assert mine.data_transfers == 2
        assert mine.connects == 2
        assert mine.batched_share == 0.0  # standalone ops: 1 connect each

        session = phone.port.open_session(tag)
        try:
            session.read_ndef(tag)
            session.read_ndef(tag)
            session.read_ndef(tag)
        finally:
            session.close()
        mine = next(
            s for s in collect_port_stats(scenario.env) if s.name == phone.name
        )
        assert mine.connects == 3
        assert mine.data_transfers == 5
        assert mine.batched_share == pytest.approx(0.4)

    def test_batched_share_is_none_before_any_transfer(self, scenario, phone):
        mine = next(
            s for s in collect_port_stats(scenario.env) if s.name == phone.name
        )
        assert mine.data_transfers == 0
        assert mine.batched_share is None
