"""Tests for the replay-driven NDEF wire fuzzer."""

import pytest

from repro.errors import NdefDecodeError
from repro.harness.fuzz import (
    MUTATIONS,
    CrashCase,
    default_corpus,
    fuzz,
    load_corpus_dir,
    probe,
    replay_corpus,
    save_case,
)

CORPUS_DIR = "tests/ndef/corpus"


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = fuzz(iterations=120, seed=42)
        second = fuzz(iterations=120, seed=42)
        assert first.mutation_counts == second.mutation_counts
        assert (first.accepted, first.rejected) == (second.accepted, second.rejected)
        assert [c.data for c in first.crashes] == [c.data for c in second.crashes]

    def test_different_seeds_differ(self):
        a = fuzz(iterations=120, seed=1)
        b = fuzz(iterations=120, seed=2)
        assert a.mutation_counts != b.mutation_counts


class TestContract:
    def test_fuzz_run_finds_no_crashes(self):
        """The headline assertion: N malformed inputs, zero untyped leaks."""
        report = fuzz(iterations=500, seed=7)
        assert report.ok, report.summary()
        assert report.iterations == 500
        # The run must actually exercise the reject path, not accept junk.
        assert report.rejected > report.accepted

    def test_committed_corpus_replays_clean(self):
        entries = load_corpus_dir(CORPUS_DIR)
        assert len(entries) >= 10  # the regression corpus is non-trivial
        report = replay_corpus(entries)
        assert report.ok, report.summary()
        assert report.iterations == len(entries)

    def test_every_mutation_produces_bytes(self):
        import random

        rng = random.Random(0)
        for name, mutation in MUTATIONS:
            out = mutation(default_corpus()[0], rng)
            assert isinstance(out, bytes), name


class TestProbe:
    def test_probe_flags_untyped_exceptions_as_crashes(self, monkeypatch):
        from repro.ndef import message as message_module

        def explode(data):
            raise IndexError("boom")

        monkeypatch.setattr(message_module.NdefMessage, "from_bytes", explode)
        outcome, crash = probe(b"\x00", "test")
        assert outcome == "crash"
        assert crash is not None and crash.stage == "decode"
        assert "IndexError" in crash.exception

    def test_probe_accepts_typed_rejections(self):
        outcome, crash = probe(b"\xd7\x00\x00", "test")  # reserved TNF
        assert outcome == "rejected" and crash is None

    def test_probe_accepts_valid_input(self):
        outcome, crash = probe(default_corpus()[0], "test")
        assert outcome == "accepted" and crash is None

    def test_probe_runs_rtd_parsers_without_leaking(self):
        # Valid wire framing, hostile RTD payload: non-ASCII language.
        data = bytes([0xD1, 0x01, 0x05, ord("T"), 0x02, 0xFF, 0xFE, 0x68, 0x69])
        outcome, crash = probe(data, "test")
        assert crash is None
        with pytest.raises(NdefDecodeError):  # and it *is* hostile
            from repro.ndef.rtd import TextRecord
            from repro.ndef.message import NdefMessage

            TextRecord.from_record(NdefMessage.from_bytes(data)[0])

    def test_probe_exercises_tag_read_path(self, monkeypatch):
        from repro.tags import tag as tag_module

        original = tag_module.SimulatedTag.read_ndef
        calls = []

        def spying(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(tag_module.SimulatedTag, "read_ndef", spying)
        probe(default_corpus()[0], "test")
        assert calls


class TestCorpusIo:
    def test_save_and_load_round_trip(self, tmp_path):
        case = CrashCase(b"\xde\xad\xbe\xef", "decode", "IndexError()", "test")
        path = save_case(tmp_path, case)
        assert path.suffix == ".hex"
        entries = load_corpus_dir(tmp_path)
        assert entries == [(path.name, b"\xde\xad\xbe\xef")]

    def test_load_ignores_whitespace(self, tmp_path):
        (tmp_path / "spaced.hex").write_text("de ad\nbe ef\n")
        assert load_corpus_dir(tmp_path) == [("spaced.hex", b"\xde\xad\xbe\xef")]

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            fuzz(iterations=1, corpus=[])


class TestRegressionBugs:
    """The fuzzer-found bugs stay fixed: each shape in the corpus crashes
    nothing today (they did before the decode fixes)."""

    @pytest.mark.parametrize(
        "hex_data",
        [
            "d1010554 02fffe68 69".replace(" ", ""),  # non-ASCII language
            "d101 06 54 02 656e fffefd".replace(" ", ""),  # bad UTF-8 body
            "d1010255 01ff".replace(" ", ""),  # bad UTF-8 URI remainder
            "d00003616263",  # EMPTY TNF with payload
            "d1000178",  # WELL_KNOWN without type
        ],
    )
    def test_formerly_crashing_inputs(self, hex_data):
        outcome, crash = probe(bytes.fromhex(hex_data), "regression")
        assert crash is None
