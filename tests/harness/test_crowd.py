"""Crowd churn generators and the bulk-mutation replay executor."""

import pytest

from repro.concurrent import EventLog
from repro.harness import (
    ChurnEvent,
    fleet_day,
    run_churn,
    turnstile_rush,
    warehouse_conveyor,
)
from repro.harness.scenario import Scenario

from tests.conftest import PlainNfcActivity, make_reference


class TestSchedules:
    def test_turnstile_rush_is_seed_deterministic(self):
        a = turnstile_rush(8, 200, duration_seconds=2.0, seed=7)
        b = turnstile_rush(8, 200, duration_seconds=2.0, seed=7)
        assert a.events == b.events
        c = turnstile_rush(8, 200, duration_seconds=2.0, seed=8)
        assert a.events != c.events

    def test_turnstile_groups_enter_and_leave_as_one_event_each(self):
        schedule = turnstile_rush(4, 50, duration_seconds=1.0, seed=1)
        assert schedule.events  # a 100/s rush produces work in 1s
        enters = [e for e in schedule if e.enter]
        leaves = [e for e in schedule if not e.enter]
        assert len(enters) == len(leaves)
        # Every cohort leaves the gate it entered, after its dwell
        # (tags recycle, so a (gate, cohort) pair can occur repeatedly;
        # pair the i-th enter with the i-th leave per key).
        entered = {}
        for event in enters:
            entered.setdefault(
                (event.device_index, event.tag_indices), []
            ).append(event.at_seconds)
        for leave in leaves:
            key = (leave.device_index, leave.tag_indices)
            times = entered.get(key)
            assert times, f"leave without enter: {leave}"
            assert leave.at_seconds > times.pop(0)

    def test_conveyor_cohorts_visit_every_gate_in_order(self):
        gates = 5
        schedule = warehouse_conveyor(gates, 24, cohort_size=8, seed=3)
        first = tuple(range(8))
        visits = [
            e for e in schedule if e.enter and tuple(e.tag_indices) == first
        ]
        assert [v.device_index for v in visits] == list(range(gates))
        assert all(
            later.at_seconds > earlier.at_seconds
            for earlier, later in zip(visits, visits[1:])
        )

    def test_schedule_counts(self):
        schedule = warehouse_conveyor(3, 30, cohort_size=10, seed=0)
        # 3 cohorts x 3 gates x (enter + leave)
        assert len(schedule) == 18
        assert schedule.tag_moves == 180

    def test_rejects_empty_populations(self):
        with pytest.raises(ValueError):
            turnstile_rush(0, 10)
        with pytest.raises(ValueError):
            warehouse_conveyor(3, 0)


class TestRunChurn:
    def test_full_speed_replay_moves_every_tag(self):
        with Scenario() as scenario:
            scenario.add_phones(3, prefix="gate")
            scenario.add_tags(30)
            schedule = warehouse_conveyor(3, 30, cohort_size=10, seed=0)
            stats = run_churn(scenario, schedule)
            assert stats.events == 18
            assert stats.enters == 9
            assert stats.leaves == 9
            assert stats.tag_moves == 180
            assert stats.peak_field_size >= 10
            # Everything left at the end of the belt.
            for phone in scenario.phones.values():
                assert scenario.env.field_size(phone.port) == 0

    def test_replay_is_idempotent_about_double_entries(self):
        """Recycled tags already inside a field are not re-entered; the
        stats count actual boundary crossings, not schedule entries."""
        with Scenario() as scenario:
            scenario.add_phones(1)
            scenario.add_tags(4)
            schedule_events = [
                ChurnEvent(0.0, 0, (0, 1), True),
                ChurnEvent(0.1, 0, (1, 2), True),  # tag 1 already inside
                ChurnEvent(0.2, 0, (0, 1, 2, 3), False),
            ]
            schedule = warehouse_conveyor(1, 4, cohort_size=4)
            schedule.events = schedule_events
            stats = run_churn(scenario, schedule)
            assert stats.tag_moves == 2 + 1 + 3
            assert stats.peak_field_size == 3

    def test_paced_replay_lets_references_get_served_mid_churn(self):
        """time_scale > 0 paces the churn on the environment clock, so
        a reference on a passing tag is serviced inside its dwell."""
        with Scenario() as scenario:
            phone = scenario.add_phone("gate-0000")
            activity = scenario.start(phone, PlainNfcActivity)
            tag = scenario.add_tag()
            ref = make_reference(activity, tag, phone)
            done = EventLog()
            ref.write("drive-by", on_written=lambda _r: done.append(1))
            schedule = warehouse_conveyor(
                1, 1, cohort_size=1, gate_dwell_seconds=0.5
            )
            stats = run_churn(scenario, schedule, time_scale=1.0)
            assert done.wait_for_count(1)
            assert stats.elapsed_seconds >= 0.4  # the dwell was real time

    def test_replay_requires_population(self):
        with Scenario() as scenario:
            schedule = turnstile_rush(2, 10, duration_seconds=0.5)
            with pytest.raises(ValueError):
                run_churn(scenario, schedule)

    def test_indices_wrap_on_smaller_populations(self):
        """A schedule generated for more devices/tags than the scenario
        has replays degenerately instead of crashing."""
        with Scenario() as scenario:
            scenario.add_phones(2)
            scenario.add_tags(10)
            schedule = turnstile_rush(16, 500, duration_seconds=0.5, seed=4)
            stats = run_churn(scenario, schedule)
            assert stats.events == len(schedule)


class TestFleetDay:
    def test_seed_deterministic(self):
        a = fleet_day(12, 100, rush_seconds=1.0, seed=5)
        b = fleet_day(12, 100, rush_seconds=1.0, seed=5)
        assert [
            (e.at_seconds, e.device_index, tuple(e.tag_indices), e.enter)
            for e in a
        ] == [
            (e.at_seconds, e.device_index, tuple(e.tag_indices), e.enter)
            for e in b
        ]
        c = fleet_day(12, 100, rush_seconds=1.0, seed=6)
        assert len(c) != len(a) or [e.at_seconds for e in c] != [
            e.at_seconds for e in a
        ]

    def test_timeline_is_monotonic(self):
        schedule = fleet_day(10, 80, rush_seconds=1.0, seed=1)
        times = [event.at_seconds for event in schedule]
        assert times == sorted(times)

    def test_devices_partition_into_gates_and_docks(self):
        device_count = 10
        schedule = fleet_day(device_count, 80, rush_seconds=1.0, seed=2)
        gate_count = device_count // 2
        used = {event.device_index for event in schedule}
        assert used & set(range(gate_count))  # turnstile gates saw traffic
        assert used & set(range(gate_count, device_count))  # dock readers too
        assert max(used) < device_count

    def test_single_device_fleet_is_all_gates(self):
        schedule = fleet_day(1, 10, rush_seconds=0.5, seed=0)
        assert {event.device_index for event in schedule} == {0}

    def test_conveyor_phase_overlaps_morning_rush(self):
        """The dock wave starts while the morning rush still runs."""
        rush = 2.0
        schedule = fleet_day(8, 64, rush_seconds=rush, seed=3)
        dock_starts = [
            e.at_seconds for e in schedule if e.device_index >= 4 and e.enter
        ]
        assert dock_starts
        assert min(dock_starts) < rush

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            fleet_day(0, 10)
        with pytest.raises(ValueError):
            fleet_day(4, 0)

    def test_replays_through_run_churn(self):
        with Scenario() as scenario:
            scenario.add_phones(4)
            scenario.add_tags(24)
            schedule = fleet_day(4, 24, rush_seconds=0.5, seed=9)
            stats = run_churn(scenario, schedule)
            assert stats.events == len(schedule)
            # Phases overlap, so some scheduled entries find the tag
            # already in a field: actual crossings <= scheduled moves.
            assert 0 < stats.tag_moves <= schedule.tag_moves
