"""Shared fixtures for the test suite.

Tests drive connectivity explicitly (move tags in and out of fields)
rather than sleeping, and wait on condition-based helpers
(:class:`repro.concurrent.EventLog`, ``wait_until``) so the suite stays
deterministic and fast.
"""

from __future__ import annotations

import pytest

from repro.android.device import AndroidDevice
from repro.core.converters import (
    NdefMessageToStringConverter,
    StringToNdefMessageConverter,
)
from repro.core.nfc_activity import NFCActivity
from repro.harness.scenario import Scenario
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.radio.environment import RfidEnvironment
from repro.tags.factory import make_tag

TEXT_TYPE = "application/x-test-text"


@pytest.fixture(scope="session")
def affinity_sanitizer():
    """The session's thread-affinity sanitizer, or ``None``.

    Opt in with ``MORENA_SANITIZER=1`` (``=strict`` raises at the
    violation point); unset, the suite runs unpatched.
    """
    from repro.analysis import sanitizer

    active = sanitizer.install_from_env()
    yield active
    if active is not None and active is sanitizer.current():
        sanitizer.uninstall()


@pytest.fixture(autouse=True)
def _affinity_guard(affinity_sanitizer):
    """Fail any test during which the sanitizer recorded a violation."""
    if affinity_sanitizer is None:
        yield
        return
    before = len(affinity_sanitizer.violations)
    yield
    fresh = affinity_sanitizer.violations[before:]
    assert not fresh, "\n".join(str(violation) for violation in fresh)


@pytest.fixture
def env():
    return RfidEnvironment()


@pytest.fixture
def scenario():
    with Scenario() as s:
        yield s


@pytest.fixture
def phone(scenario):
    return scenario.add_phone("test-phone")


class PlainNfcActivity(NFCActivity):
    """An NFCActivity with no discoverers, for wiring in tests."""


@pytest.fixture
def activity(scenario, phone):
    return scenario.start(phone, PlainNfcActivity)


def text_message(text: str, mime_type: str = TEXT_TYPE) -> NdefMessage:
    return NdefMessage([mime_record(mime_type, text.encode("utf-8"))])


def text_tag(text: str, tag_type: str = "NTAG216", mime_type: str = TEXT_TYPE):
    return make_tag(tag_type, content=text_message(text, mime_type))


def string_converters(mime_type: str = TEXT_TYPE):
    return NdefMessageToStringConverter(), StringToNdefMessageConverter(mime_type)


def make_reference(activity, tag, phone=None, mime_type: str = TEXT_TYPE, **kwargs):
    """Create (or fetch) the activity's reference for a simulated tag."""
    from repro.android.nfc.tech import Tag

    port = phone.port if phone is not None else activity.device.port
    read_conv, write_conv = string_converters(mime_type)
    reference, _ = activity.reference_factory.get_or_create(
        Tag(tag, port), read_conv, write_conv, **kwargs
    )
    return reference
