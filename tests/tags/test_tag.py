"""Unit tests for the simulated tag: CC, TLV area, NDEF I/O, locking."""

import pytest

from repro.errors import (
    TagCapacityError,
    TagFormatError,
    TagReadOnlyError,
)
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.tag import CC_MAGIC, SimulatedTag, generate_uid
from repro.tags.types import TAG_TYPES


def msg(payload: bytes) -> NdefMessage:
    return NdefMessage([mime_record("a/b", payload)])


class TestIdentity:
    def test_uids_are_unique(self):
        uids = {SimulatedTag().uid for _ in range(50)}
        assert len(uids) == 50

    def test_uid_is_seven_bytes_nxp_style(self):
        uid = generate_uid()
        assert len(uid) == 7
        assert uid[0] == 0x04

    def test_explicit_uid(self):
        tag = SimulatedTag(uid=b"\x04\x01\x02\x03\x04\x05\x06")
        assert tag.uid_hex == "04010203040506"

    def test_wrong_uid_length_rejected(self):
        with pytest.raises(ValueError):
            SimulatedTag(uid=b"\x04\x01")


class TestFormatting:
    def test_fresh_tag_is_formatted_and_empty(self):
        tag = SimulatedTag()
        assert tag.is_ndef_formatted
        assert tag.is_empty
        assert tag.read_ndef().is_empty

    def test_unformatted_tag(self):
        tag = SimulatedTag(formatted=False)
        assert not tag.is_ndef_formatted
        assert not tag.is_empty
        with pytest.raises(TagFormatError):
            tag.read_ndef()

    def test_format_writes_cc_magic(self):
        tag = SimulatedTag(formatted=False)
        tag.format()
        assert tag.memory.read_page(3)[0] == CC_MAGIC
        assert tag.is_ndef_formatted

    def test_write_to_unformatted_rejected(self):
        tag = SimulatedTag(formatted=False)
        with pytest.raises(TagFormatError):
            tag.write_ndef(msg(b"x"))


class TestNdefIO:
    def test_write_read_roundtrip(self):
        tag = SimulatedTag()
        tag.write_ndef(msg(b"hello"))
        assert tag.read_ndef() == msg(b"hello")
        assert not tag.is_empty

    def test_overwrite_replaces_content(self):
        tag = SimulatedTag()
        tag.write_ndef(msg(b"first of several"))
        tag.write_ndef(msg(b"2nd"))
        assert tag.read_ndef() == msg(b"2nd")

    def test_erase_restores_empty(self):
        tag = SimulatedTag()
        tag.write_ndef(msg(b"data"))
        tag.erase()
        assert tag.is_empty

    def test_large_message_uses_three_byte_tlv_length(self):
        tag = SimulatedTag(tag_type=TAG_TYPES["NTAG216"])
        payload = bytes(range(256)) * 2  # > 255 encoded
        tag.write_ndef(msg(payload))
        assert tag.read_ndef() == msg(payload)

    def test_capacity_exceeded(self):
        tag = SimulatedTag(tag_type=TAG_TYPES["MIFARE_ULTRALIGHT"])
        with pytest.raises(TagCapacityError):
            tag.write_ndef(msg(b"x" * 100))

    def test_capacity_boundary_write_succeeds(self):
        tag = SimulatedTag(tag_type=TAG_TYPES["MIFARE_ULTRALIGHT"])
        overhead = len(msg(b"").to_bytes())
        payload = b"x" * (tag.ndef_capacity - overhead)
        tag.write_ndef(msg(payload))
        assert tag.read_ndef()[0].payload == payload

    def test_ndef_capacity_positive_for_all_types(self):
        for tag_type in TAG_TYPES.values():
            assert tag_type.ndef_capacity > 0


class TestReadOnly:
    def test_make_read_only_blocks_writes(self):
        tag = SimulatedTag()
        tag.write_ndef(msg(b"frozen"))
        tag.make_read_only()
        assert not tag.is_writable
        with pytest.raises(TagReadOnlyError):
            tag.write_ndef(msg(b"nope"))

    def test_read_only_tag_still_readable(self):
        tag = SimulatedTag()
        tag.write_ndef(msg(b"frozen"))
        tag.make_read_only()
        assert tag.read_ndef() == msg(b"frozen")


class TestTornWrites:
    def test_corrupt_tlv_makes_read_fail(self):
        tag = SimulatedTag()
        tag.write_ndef(msg(b"good data"))
        encoded = msg(b"replacement!").to_bytes()
        tag._store_tlv(encoded[: len(encoded) // 2])
        with pytest.raises(Exception):
            tag.read_ndef()

    def test_rewrite_heals_corrupt_tlv(self):
        tag = SimulatedTag()
        encoded = msg(b"replacement!").to_bytes()
        tag._store_tlv(encoded[: len(encoded) // 2])
        tag.write_ndef(msg(b"healed"))
        assert tag.read_ndef() == msg(b"healed")

    def test_is_empty_false_on_corrupt_area(self):
        tag = SimulatedTag()
        encoded = msg(b"replacement!").to_bytes()
        tag._store_tlv(encoded[: len(encoded) // 2])
        assert not tag.is_empty


class TestDiagnostics:
    def test_raw_dump_length(self):
        tag = SimulatedTag(tag_type=TAG_TYPES["NTAG213"])
        assert len(tag.raw_dump()) == tag.memory.byte_size

    def test_write_cycles_increase(self):
        tag = SimulatedTag()
        before = tag.write_cycles
        tag.write_ndef(msg(b"bump"))
        assert tag.write_cycles > before
