"""Property-based tests for tag memory and NDEF storage invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.memory import PAGE_SIZE, TagMemory
from repro.tags.tag import SimulatedTag
from repro.tags.types import TAG_TYPES


@given(st.binary(max_size=200), st.integers(min_value=0, max_value=10))
def test_write_bytes_then_read_back(data, start_page):
    memory = TagMemory(page_count=64)
    memory.write_bytes(start_page, data)
    assert memory.read_pages(0, 64)[
        start_page * PAGE_SIZE : start_page * PAGE_SIZE + len(data)
    ] == data


@given(st.binary(max_size=100))
def test_write_bytes_touches_only_its_range(data):
    """Bytes before the write window and after it stay intact."""
    memory = TagMemory(page_count=64)
    sentinel_before = b"\xaa" * PAGE_SIZE
    sentinel_after = b"\xbb" * PAGE_SIZE
    memory.write_page(0, sentinel_before)
    memory.write_page(40, sentinel_after)
    memory.write_bytes(1, data)
    assert memory.read_page(0) == sentinel_before
    assert memory.read_page(40) == sentinel_after


@given(st.binary(min_size=0, max_size=800))
@settings(max_examples=80)
def test_ndef_storage_roundtrip(payload):
    tag = SimulatedTag(tag_type=TAG_TYPES["NTAG216"])
    message = NdefMessage([mime_record("a/b", payload)])
    if message.byte_length <= tag.ndef_capacity:
        tag.write_ndef(message)
        assert tag.read_ndef() == message


@given(st.lists(st.binary(max_size=60), min_size=1, max_size=5))
@settings(max_examples=60)
def test_multi_record_storage_roundtrip(payloads):
    tag = SimulatedTag(tag_type=TAG_TYPES["SIMTAG_4K"])
    message = NdefMessage([mime_record("a/b", p) for p in payloads])
    tag.write_ndef(message)
    assert tag.read_ndef() == message


@given(st.lists(st.binary(min_size=1, max_size=120), min_size=1, max_size=6))
@settings(max_examples=60)
def test_last_write_wins(payloads):
    tag = SimulatedTag(tag_type=TAG_TYPES["NTAG216"])
    for payload in payloads:
        tag.write_ndef(NdefMessage([mime_record("a/b", payload)]))
    assert tag.read_ndef()[0].payload == payloads[-1]


@given(st.integers(min_value=1, max_value=200))
def test_capacity_is_a_sharp_boundary(extra):
    """Any message even one byte over capacity is rejected; at capacity it fits."""
    import pytest

    from repro.errors import TagCapacityError

    tag = SimulatedTag(tag_type=TAG_TYPES["NTAG213"])
    overhead = NdefMessage([mime_record("a/b", b"")]).byte_length
    fitting = b"x" * (tag.ndef_capacity - overhead)
    tag.write_ndef(NdefMessage([mime_record("a/b", fitting)]))
    with pytest.raises(TagCapacityError):
        tag.write_ndef(NdefMessage([mime_record("a/b", fitting + b"y" * extra)]))
    # The failed write must not have corrupted the stored message.
    assert tag.read_ndef()[0].payload == fitting
