"""Stateful property tests: a simulated tag against a reference model.

Hypothesis drives random operation sequences (write, erase, corrupt,
heal, lock, snapshot/restore) against a :class:`SimulatedTag` while a
trivial Python model tracks what the tag *should* contain; any
divergence is a bug in the TLV/memory machinery.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import TagCapacityError, TagReadOnlyError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.store import restore_tag, snapshot_tag
from repro.tags.tag import SimulatedTag
from repro.tags.types import TAG_TYPES


def message_for(payload: bytes) -> NdefMessage:
    return NdefMessage([mime_record("a/b", payload)])


class TagMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.tag = SimulatedTag(tag_type=TAG_TYPES["NTAG215"])
        # The reference model: expected payload, or markers.
        self.expected = "EMPTY"  # "EMPTY" | bytes | "CORRUPT"
        self.locked = False

    # -- operations ------------------------------------------------------------

    @rule(payload=st.binary(min_size=0, max_size=300))
    def write(self, payload: bytes) -> None:
        message = message_for(payload)
        try:
            self.tag.write_ndef(message)
        except TagReadOnlyError:
            assert self.locked
            return
        except TagCapacityError:
            assert message.byte_length > self.tag.ndef_capacity
            return
        assert not self.locked
        assert message.byte_length <= self.tag.ndef_capacity
        self.expected = payload

    @rule()
    def erase(self) -> None:
        try:
            self.tag.erase()
        except TagReadOnlyError:
            assert self.locked
            return
        self.expected = "EMPTY"

    @precondition(lambda self: not self.locked)
    @rule(payload=st.binary(min_size=4, max_size=100))
    def corrupt(self, payload: bytes) -> None:
        """A torn write from some other device."""
        self.tag._tear_write_hook(message_for(payload))
        self.expected = "CORRUPT"

    @rule()
    def lock(self) -> None:
        self.tag.make_read_only()
        self.locked = True

    @precondition(lambda self: not self.locked)
    @rule()
    def snapshot_roundtrip(self) -> None:
        """Snapshot/restore must be a perfect identity."""
        self.tag = restore_tag(snapshot_tag(self.tag))

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def tag_matches_model(self) -> None:
        if self.expected == "CORRUPT":
            try:
                self.tag.read_ndef()
            except Exception:
                return  # unreadable, as modelled
            raise AssertionError("corrupt tag read back cleanly")
        if self.expected == "EMPTY":
            assert self.tag.read_ndef().is_empty
        else:
            assert self.tag.read_ndef()[0].payload == self.expected

    @invariant()
    def formatted_flag_stable(self) -> None:
        assert self.tag.is_ndef_formatted

    @invariant()
    def lock_state_matches_model(self) -> None:
        assert self.tag.is_writable == (not self.locked)


TestTagStateMachine = TagMachine.TestCase
TestTagStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
