"""Unit tests for the page-addressed tag EEPROM."""

import pytest

from repro.errors import TagError, TagReadOnlyError, TagWornOutError
from repro.tags.memory import PAGE_SIZE, TagMemory


class TestGeometry:
    def test_sizes(self):
        memory = TagMemory(page_count=10)
        assert memory.page_count == 10
        assert memory.byte_size == 10 * PAGE_SIZE

    def test_zero_pages_rejected(self):
        with pytest.raises(TagError):
            TagMemory(page_count=0)

    def test_starts_zeroed(self):
        memory = TagMemory(page_count=4)
        assert memory.read_pages(0, 4) == b"\x00" * 16


class TestPageIO:
    def test_write_read_roundtrip(self):
        memory = TagMemory(page_count=4)
        memory.write_page(2, b"abcd")
        assert memory.read_page(2) == b"abcd"
        assert memory.read_page(1) == b"\x00" * 4

    def test_write_requires_exact_page_size(self):
        memory = TagMemory(page_count=4)
        with pytest.raises(TagError):
            memory.write_page(0, b"abc")
        with pytest.raises(TagError):
            memory.write_page(0, b"abcde")

    def test_out_of_range_page_rejected(self):
        memory = TagMemory(page_count=4)
        with pytest.raises(TagError):
            memory.read_page(4)
        with pytest.raises(TagError):
            memory.write_page(-1, b"abcd")

    def test_multi_page_read(self):
        memory = TagMemory(page_count=4)
        memory.write_page(1, b"1111")
        memory.write_page(2, b"2222")
        assert memory.read_pages(1, 2) == b"11112222"

    def test_multi_page_read_overflow_rejected(self):
        memory = TagMemory(page_count=4)
        with pytest.raises(TagError):
            memory.read_pages(2, 3)

    def test_negative_count_rejected(self):
        memory = TagMemory(page_count=4)
        with pytest.raises(TagError):
            memory.read_pages(0, -1)


class TestWriteBytes:
    def test_partial_tail_page_preserves_existing_bytes(self):
        memory = TagMemory(page_count=4)
        memory.write_page(1, b"WXYZ")
        memory.write_bytes(0, b"abcde")  # 1 full page + 1 byte
        assert memory.read_page(0) == b"abcd"
        assert memory.read_page(1) == b"eXYZ"

    def test_exact_multiple_of_page(self):
        memory = TagMemory(page_count=4)
        memory.write_bytes(1, b"12345678")
        assert memory.read_pages(1, 2) == b"12345678"

    def test_overflow_rejected_before_any_write(self):
        memory = TagMemory(page_count=2)
        memory.write_page(0, b"keep")
        with pytest.raises(TagError):
            memory.write_bytes(1, b"123456789")
        assert memory.read_page(0) == b"keep"


class TestLocking:
    def test_lock_blocks_writes(self):
        memory = TagMemory(page_count=4)
        memory.lock()
        assert memory.locked
        with pytest.raises(TagReadOnlyError):
            memory.write_page(0, b"abcd")

    def test_lock_still_allows_reads(self):
        memory = TagMemory(page_count=4)
        memory.write_page(0, b"abcd")
        memory.lock()
        assert memory.read_page(0) == b"abcd"


class TestEndurance:
    def test_wear_out_after_budget(self):
        memory = TagMemory(page_count=2, write_endurance=3)
        for _ in range(3):
            memory.write_page(0, b"abcd")
        with pytest.raises(TagWornOutError):
            memory.write_page(0, b"abcd")

    def test_wear_is_per_page(self):
        memory = TagMemory(page_count=2, write_endurance=1)
        memory.write_page(0, b"abcd")
        memory.write_page(1, b"abcd")  # other page still fresh
        with pytest.raises(TagWornOutError):
            memory.write_page(0, b"abcd")

    def test_write_counters(self):
        memory = TagMemory(page_count=2, write_endurance=10)
        memory.write_page(0, b"abcd")
        memory.write_page(0, b"abcd")
        memory.write_page(1, b"abcd")
        assert memory.write_count(0) == 2
        assert memory.write_count(1) == 1
        assert memory.total_writes() == 3

    def test_worn_pages_listing(self):
        memory = TagMemory(page_count=3, write_endurance=1)
        memory.write_page(1, b"abcd")
        assert memory.worn_pages() == [1]

    def test_no_endurance_model_means_unlimited(self):
        memory = TagMemory(page_count=1, write_endurance=0)
        for _ in range(100):
            memory.write_page(0, b"abcd")
        assert memory.worn_pages() == []
