"""Unit tests for the ISO 7816-4 APDU codec."""

import pytest

from repro.tags.apdu import (
    ApduError,
    CommandApdu,
    ResponseApdu,
    SW_FILE_NOT_FOUND,
    SW_OK,
    error,
    ok,
)


class TestCommandApdu:
    def test_case1_no_data_no_le(self):
        apdu = CommandApdu(0x00, 0xA4, 0x04, 0x00)
        assert apdu.to_bytes() == bytes([0x00, 0xA4, 0x04, 0x00])
        assert CommandApdu.from_bytes(apdu.to_bytes()) == apdu

    def test_case2_le_only(self):
        apdu = CommandApdu(0x00, 0xB0, 0x00, 0x02, le=15)
        assert apdu.to_bytes()[-1] == 15
        assert CommandApdu.from_bytes(apdu.to_bytes()) == apdu

    def test_case2_le_256_encoded_as_zero(self):
        apdu = CommandApdu(0x00, 0xB0, 0x00, 0x00, le=0x100)
        assert apdu.to_bytes()[-1] == 0x00
        assert CommandApdu.from_bytes(apdu.to_bytes()).le == 0x100

    def test_case3_data_only(self):
        apdu = CommandApdu(0x00, 0xD6, 0x00, 0x00, data=b"\x01\x02\x03")
        raw = apdu.to_bytes()
        assert raw[4] == 3  # Lc
        assert CommandApdu.from_bytes(raw) == apdu

    def test_case4_data_and_le(self):
        apdu = CommandApdu(0x00, 0xA4, 0x04, 0x00, data=b"\xd2\x76", le=0)
        decoded = CommandApdu.from_bytes(apdu.to_bytes())
        assert decoded.data == b"\xd2\x76"
        assert decoded.le == 0x100  # 0 on the wire means 256

    def test_p1p2_combined(self):
        assert CommandApdu(0, 0xB0, 0x12, 0x34).p1p2 == 0x1234

    def test_too_short_rejected(self):
        with pytest.raises(ApduError):
            CommandApdu.from_bytes(b"\x00\xa4\x04")

    def test_inconsistent_lc_rejected(self):
        with pytest.raises(ApduError):
            CommandApdu.from_bytes(bytes([0, 0xD6, 0, 0, 5, 1, 2]))

    def test_field_range_validation(self):
        with pytest.raises(ApduError):
            CommandApdu(0x100, 0, 0, 0)
        with pytest.raises(ApduError):
            CommandApdu(0, 0, 0, 0, data=b"x" * 256)
        with pytest.raises(ApduError):
            CommandApdu(0, 0, 0, 0, le=0x101)


class TestResponseApdu:
    def test_roundtrip(self):
        response = ResponseApdu(sw=SW_OK, data=b"payload")
        assert ResponseApdu.from_bytes(response.to_bytes()) == response

    def test_status_word_split(self):
        raw = ResponseApdu(sw=0x6A82).to_bytes()
        assert raw == b"\x6a\x82"

    def test_is_ok(self):
        assert ok().is_ok
        assert ok(b"data").data == b"data"
        assert not error(SW_FILE_NOT_FOUND).is_ok

    def test_too_short_rejected(self):
        with pytest.raises(ApduError):
            ResponseApdu.from_bytes(b"\x90")

    def test_sw_range_validated(self):
        with pytest.raises(ApduError):
            ResponseApdu(sw=0x10000)
