"""Tests for tag snapshot/restore and the directory-backed TagStore."""

import pytest

from repro.errors import TagError, TagReadOnlyError, TagWornOutError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.factory import make_tag
from repro.tags.store import TagStore, restore_tag, snapshot_tag
from repro.tags.types import TAG_TYPES, TagType


def msg(payload: bytes) -> NdefMessage:
    return NdefMessage([mime_record("a/b", payload)])


class TestSnapshotRestore:
    def test_roundtrip_preserves_content_and_identity(self):
        tag = make_tag("NTAG213", content=msg(b"persisted"))
        restored = restore_tag(snapshot_tag(tag))
        assert restored.uid == tag.uid
        assert restored.tag_type.name == "NTAG213"
        assert restored.read_ndef() == msg(b"persisted")

    def test_roundtrip_preserves_raw_memory(self):
        tag = make_tag(content=msg(b"bytes"))
        restored = restore_tag(snapshot_tag(tag))
        assert restored.raw_dump() == tag.raw_dump()

    def test_roundtrip_preserves_lock_state(self):
        tag = make_tag(content=msg(b"frozen"))
        tag.make_read_only()
        restored = restore_tag(snapshot_tag(tag))
        assert not restored.is_writable
        with pytest.raises(TagReadOnlyError):
            restored.write_ndef(msg(b"nope"))

    def test_roundtrip_preserves_wear(self):
        worn_type = TagType(name="NTAG213", user_pages=36, write_endurance=3)
        from repro.tags.tag import SimulatedTag

        tag = SimulatedTag(tag_type=worn_type)
        tag.write_ndef(msg(b"1"))
        tag.write_ndef(msg(b"2"))
        restored = restore_tag(snapshot_tag(tag))
        # One format write + two content writes already spent; the next
        # write must exhaust the 3-cycle budget exactly like the original.
        with pytest.raises(TagWornOutError):
            restored.write_ndef(msg(b"3"))

    def test_unformatted_tag_roundtrip(self):
        tag = make_tag(formatted=False)
        restored = restore_tag(snapshot_tag(tag))
        assert not restored.is_ndef_formatted

    def test_garbage_rejected(self):
        with pytest.raises(TagError):
            restore_tag(b"not json at all")

    def test_wrong_version_rejected(self):
        import json

        state = json.loads(snapshot_tag(make_tag()).decode())
        state["version"] = 99
        with pytest.raises(TagError):
            restore_tag(json.dumps(state).encode())

    def test_restored_tag_is_usable_in_the_radio(self):
        from repro.radio.environment import RfidEnvironment

        restored = restore_tag(snapshot_tag(make_tag(content=msg(b"live"))))
        env = RfidEnvironment()
        port = env.create_port("phone")
        env.move_tag_into_field(restored, port)
        assert port.read_ndef(restored) == msg(b"live")


class TestTagStore:
    def test_save_load_cycle(self, tmp_path):
        store = TagStore(tmp_path)
        tag = make_tag(content=msg(b"stored"))
        store.save("lobby-tag", tag)
        assert "lobby-tag" in store
        loaded = store.load("lobby-tag")
        assert loaded.uid == tag.uid
        assert loaded.read_ndef() == msg(b"stored")

    def test_names_listing(self, tmp_path):
        store = TagStore(tmp_path)
        store.save("b-tag", make_tag())
        store.save("a-tag", make_tag())
        assert store.names() == ["a-tag", "b-tag"]

    def test_overwrite(self, tmp_path):
        store = TagStore(tmp_path)
        store.save("x", make_tag(content=msg(b"old")))
        store.save("x", make_tag(content=msg(b"new")))
        assert store.load("x").read_ndef() == msg(b"new")

    def test_delete(self, tmp_path):
        store = TagStore(tmp_path)
        store.save("gone", make_tag())
        assert store.delete("gone")
        assert not store.delete("gone")
        assert "gone" not in store

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(TagError):
            TagStore(tmp_path).load("ghost")

    def test_invalid_names_rejected(self, tmp_path):
        store = TagStore(tmp_path)
        with pytest.raises(TagError):
            store.save("../escape", make_tag())
        with pytest.raises(TagError):
            store.save("", make_tag())

    def test_two_stores_same_directory_share_tags(self, tmp_path):
        TagStore(tmp_path).save("shared", make_tag(content=msg(b"x")))
        assert TagStore(tmp_path).load("shared").read_ndef() == msg(b"x")
