"""Unit tests for Type 4 tags: APDU protocol, NDEF mapping, tear semantics."""

import pytest

from repro.errors import TagCapacityError, TagFormatError, TagReadOnlyError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.apdu import (
    INS_READ_BINARY,
    INS_SELECT,
    INS_UPDATE_BINARY,
    SW_CONDITIONS_NOT_SATISFIED,
    SW_FILE_NOT_FOUND,
    SW_INS_NOT_SUPPORTED,
    CommandApdu,
    ResponseApdu,
)
from repro.tags.type4 import (
    CC_FILE_ID,
    NDEF_AID,
    NDEF_FILE_ID,
    TYPE4_SPECS,
    Type4Tag,
    make_type4_tag,
)


def msg(payload: bytes = b"data") -> NdefMessage:
    return NdefMessage([mime_record("a/b", payload)])


def exchange(tag: Type4Tag, command: CommandApdu) -> ResponseApdu:
    return ResponseApdu.from_bytes(tag.process_apdu(command.to_bytes()))


def select_app(tag: Type4Tag) -> ResponseApdu:
    return exchange(tag, CommandApdu(0x00, INS_SELECT, 0x04, 0x00, data=NDEF_AID))


def select_file(tag: Type4Tag, file_id: int) -> ResponseApdu:
    return exchange(
        tag,
        CommandApdu(0x00, INS_SELECT, 0x00, 0x0C, data=file_id.to_bytes(2, "big")),
    )


class TestApduProtocol:
    def test_select_ndef_application(self):
        assert select_app(Type4Tag()).is_ok

    def test_select_wrong_aid_fails(self):
        tag = Type4Tag()
        response = exchange(
            tag, CommandApdu(0x00, INS_SELECT, 0x04, 0x00, data=b"\x01\x02")
        )
        assert response.sw == SW_FILE_NOT_FOUND

    def test_file_select_requires_application(self):
        tag = Type4Tag()
        assert select_file(tag, NDEF_FILE_ID).sw == SW_CONDITIONS_NOT_SATISFIED

    def test_select_unknown_file_fails(self):
        tag = Type4Tag()
        select_app(tag)
        assert select_file(tag, 0xBEEF).sw == SW_FILE_NOT_FOUND

    def test_unknown_instruction(self):
        tag = Type4Tag()
        response = exchange(tag, CommandApdu(0x00, 0xCA, 0x00, 0x00))
        assert response.sw == SW_INS_NOT_SUPPORTED

    def test_read_requires_selected_file(self):
        tag = Type4Tag()
        select_app(tag)
        response = exchange(tag, CommandApdu(0x00, INS_READ_BINARY, 0, 0, le=2))
        assert response.sw == SW_CONDITIONS_NOT_SATISFIED

    def test_cc_file_describes_ndef_file(self):
        tag = Type4Tag()
        select_app(tag)
        assert select_file(tag, CC_FILE_ID).is_ok
        response = exchange(tag, CommandApdu(0x00, INS_READ_BINARY, 0, 0, le=17))
        assert response.is_ok
        cc = response.data
        cclen = int.from_bytes(cc[0:2], "big")
        assert cclen == len(cc)
        assert cc[2] == 0x20  # mapping version 2.0
        # The NDEF file control TLV names the NDEF file and its size.
        assert cc[7] == 0x04 and cc[8] == 0x06
        assert int.from_bytes(cc[9:11], "big") == NDEF_FILE_ID
        assert int.from_bytes(cc[11:13], "big") == tag.tag_type.ndef_file_size

    def test_update_binary_writes(self):
        tag = Type4Tag()
        select_app(tag)
        select_file(tag, NDEF_FILE_ID)
        assert exchange(
            tag, CommandApdu(0x00, INS_UPDATE_BINARY, 0x00, 0x02, data=b"AB")
        ).is_ok
        response = exchange(tag, CommandApdu(0x00, INS_READ_BINARY, 0x00, 0x02, le=2))
        assert response.data == b"AB"

    def test_cc_file_is_not_writable(self):
        tag = Type4Tag()
        select_app(tag)
        select_file(tag, CC_FILE_ID)
        response = exchange(
            tag, CommandApdu(0x00, INS_UPDATE_BINARY, 0, 0, data=b"\x00")
        )
        assert response.sw == SW_CONDITIONS_NOT_SATISFIED

    def test_hostile_apdu_bytes_answer_with_status_word(self):
        tag = Type4Tag()
        response = ResponseApdu.from_bytes(tag.process_apdu(b"\xff"))
        assert not response.is_ok

    def test_apdu_counter(self):
        tag = Type4Tag()
        select_app(tag)
        select_file(tag, NDEF_FILE_ID)
        assert tag.apdu_count == 2


class TestNdefMapping:
    def test_fresh_tag_is_formatted_and_empty(self):
        tag = Type4Tag()
        assert tag.is_ndef_formatted
        assert tag.is_empty
        assert tag.read_ndef().is_empty

    def test_write_read_roundtrip(self):
        tag = make_type4_tag(content=msg(b"hello type 4"))
        assert tag.read_ndef() == msg(b"hello type 4")
        assert not tag.is_empty

    def test_large_message_spans_many_apdus(self):
        tag = make_type4_tag("TYPE4_8K")
        payload = bytes(range(256)) * 20  # 5120 bytes > MAX_LC per APDU
        tag.write_ndef(msg(payload))
        assert tag.read_ndef() == msg(payload)

    def test_capacity_enforced(self):
        tag = make_type4_tag("TYPE4_2K")
        with pytest.raises(TagCapacityError):
            tag.write_ndef(msg(b"x" * 4000))

    def test_erase(self):
        tag = make_type4_tag(content=msg(b"gone"))
        tag.erase()
        assert tag.is_empty

    def test_read_only(self):
        tag = make_type4_tag(content=msg(b"frozen"))
        tag.make_read_only()
        assert not tag.is_writable
        with pytest.raises(TagReadOnlyError):
            tag.write_ndef(msg(b"nope"))
        assert tag.read_ndef() == msg(b"frozen")  # reads still fine

    def test_unknown_spec_rejected(self):
        with pytest.raises(TagFormatError):
            make_type4_tag("TYPE9")

    def test_specs_catalog(self):
        for name, spec in TYPE4_SPECS.items():
            assert spec.name == name
            assert spec.ndef_capacity == spec.ndef_file_size - 2


class TestTearSemantics:
    def test_torn_write_leaves_valid_empty_tag(self):
        """The safe-update sequence: a tear yields empty, never corrupt."""
        tag = make_type4_tag(content=msg(b"original content"))
        tag._tear_write_hook(msg(b"replacement that tears"))
        after = tag.read_ndef()  # must not raise
        assert after.is_empty

    def test_type2_contrast_torn_write_corrupts(self):
        from repro.tags.factory import make_tag

        tag = make_tag(content=msg(b"original content"))
        tag._tear_write_hook(msg(b"replacement that tears"))
        with pytest.raises(Exception):
            tag.read_ndef()

    def test_rewrite_after_tear_restores_data(self):
        tag = make_type4_tag(content=msg(b"original"))
        tag._tear_write_hook(msg(b"torn"))
        tag.write_ndef(msg(b"restored"))
        assert tag.read_ndef() == msg(b"restored")


class TestRadioIntegration:
    def test_type4_tag_works_through_port(self):
        from repro.radio.environment import RfidEnvironment

        env = RfidEnvironment()
        port = env.create_port("reader")
        tag = make_type4_tag(content=msg(b"via radio"))
        env.move_tag_into_field(tag, port)
        assert port.read_ndef(tag) == msg(b"via radio")
        port.write_ndef(tag, msg(b"updated"))
        assert tag.read_ndef() == msg(b"updated")

    def test_type4_tag_discovered_by_middleware(self, scenario, phone):
        """The full MORENA stack is tag-technology agnostic."""
        from repro.concurrent import EventLog
        from repro.core import (
            NFCActivity,
            NdefMessageToStringConverter,
            StringToNdefMessageConverter,
            TagDiscoverer,
        )

        log = EventLog()

        class App(NFCActivity):
            def on_create(self):
                outer = self

                class Disc(TagDiscoverer):
                    def on_tag_detected(self, reference):
                        log.append(reference.cached)

                self.disc = Disc(
                    self,
                    "a/b",
                    NdefMessageToStringConverter(),
                    StringToNdefMessageConverter("a/b"),
                )

        scenario.start(phone, App)
        tag = make_type4_tag(content=msg(b"type4 through MORENA"))
        scenario.env.move_tag_into_field(tag, phone.port)
        assert log.wait_for_count(1)
        assert log.snapshot() == ["type4 through MORENA"]

    def test_transceive_through_port(self):
        from repro.radio.environment import RfidEnvironment

        env = RfidEnvironment()
        port = env.create_port("reader")
        tag = make_type4_tag()
        env.move_tag_into_field(tag, port)
        raw = port.transceive(
            tag, CommandApdu(0x00, INS_SELECT, 0x04, 0x00, data=NDEF_AID).to_bytes()
        )
        assert ResponseApdu.from_bytes(raw).is_ok

    def test_transceive_on_type2_tag_rejected(self):
        from repro.radio.environment import RfidEnvironment
        from repro.tags.factory import make_tag

        env = RfidEnvironment()
        port = env.create_port("reader")
        tag = make_tag()
        env.move_tag_into_field(tag, port)
        with pytest.raises(TagFormatError):
            port.transceive(tag, b"\x00\xa4\x04\x00")
