"""Unit tests for tag construction helpers and the type catalog."""

import pytest

from repro.errors import TagError
from repro.ndef.message import NdefMessage
from repro.ndef.mime import mime_record
from repro.tags.factory import make_tag, make_tags
from repro.tags.memory import PAGE_SIZE
from repro.tags.types import TAG_TYPES, TagType


class TestMakeTag:
    def test_default_type(self):
        assert make_tag().tag_type.name == "NTAG216"

    def test_by_name(self):
        assert make_tag("NTAG213").tag_type.name == "NTAG213"

    def test_by_type_object(self):
        tag_type = TAG_TYPES["NTAG215"]
        assert make_tag(tag_type).tag_type is tag_type

    def test_unknown_name_lists_known_types(self):
        with pytest.raises(TagError) as excinfo:
            make_tag("NTAG999")
        assert "NTAG213" in str(excinfo.value)

    def test_preloaded_content(self):
        message = NdefMessage([mime_record("a/b", b"preloaded")])
        tag = make_tag(content=message)
        assert tag.read_ndef() == message

    def test_preload_on_unformatted_rejected(self):
        message = NdefMessage([mime_record("a/b", b"x")])
        with pytest.raises(TagError):
            make_tag(content=message, formatted=False)

    def test_unformatted(self):
        assert not make_tag(formatted=False).is_ndef_formatted


class TestMakeTags:
    def test_count(self):
        tags = make_tags(5, "NTAG213")
        assert len(tags) == 5
        assert len({t.uid for t in tags}) == 5

    def test_zero(self):
        assert make_tags(0) == []

    def test_negative_rejected(self):
        with pytest.raises(TagError):
            make_tags(-1)


class TestTypeCatalog:
    def test_catalog_names_match_keys(self):
        for name, tag_type in TAG_TYPES.items():
            assert tag_type.name == name

    def test_user_bytes(self):
        assert TAG_TYPES["NTAG213"].user_bytes == 36 * PAGE_SIZE

    def test_total_pages_adds_header(self):
        assert TAG_TYPES["NTAG213"].total_pages == 40

    def test_capacity_ordering(self):
        ultralight = TAG_TYPES["MIFARE_ULTRALIGHT"].ndef_capacity
        ntag216 = TAG_TYPES["NTAG216"].ndef_capacity
        simtag = TAG_TYPES["SIMTAG_4K"].ndef_capacity
        assert ultralight < ntag216 < simtag

    def test_small_area_capacity_overhead(self):
        small = TagType(name="TINY", user_pages=10)  # 40 bytes < 255
        assert small.ndef_capacity == 40 - 3

    def test_large_area_capacity_overhead(self):
        large = TagType(name="BIG", user_pages=100)  # 400 bytes > 255
        assert large.ndef_capacity == 400 - 5
