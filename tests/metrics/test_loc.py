"""Tests for the LoC counter and the actual Figure 2 numbers of this repo."""

import repro.apps.wifi.config as morena_config
import repro.apps.wifi.morena_app as morena_app
import repro.baseline.handcrafted_wifi as handcrafted
from repro.metrics.annotations import CATEGORIES, RfidCategory
from repro.metrics.loc import (
    LocCount,
    compare_implementations,
    count_module,
    count_source,
)


class TestCounting:
    def test_counts_code_lines_only(self):
        source = "\n".join(
            [
                "# @rfid: read-write",
                "code_line()",
                "",
                "# a comment, not counted",
                "another_line()",
                "# @rfid: end",
            ]
        )
        count = count_source(source)
        assert count.by_category[RfidCategory.READ_WRITE] == 2
        assert count.total == 2

    def test_lines_outside_regions_not_counted(self):
        source = "a()\n# @rfid: concurrency\nb()\n# @rfid: end\nc()"
        assert count_source(source).total == 1

    def test_multiple_regions_accumulate(self):
        source = "\n".join(
            [
                "# @rfid: read-write",
                "a()",
                "# @rfid: end",
                "# @rfid: read-write",
                "b()",
                "# @rfid: end",
            ]
        )
        assert count_source(source).by_category[RfidCategory.READ_WRITE] == 2

    def test_percentages(self):
        count = LocCount(name="x")
        count.by_category[RfidCategory.READ_WRITE] = 3
        count.by_category[RfidCategory.CONCURRENCY] = 1
        assert count.percentage(RfidCategory.READ_WRITE) == 75.0
        assert count.percentage(RfidCategory.CONCURRENCY) == 25.0

    def test_percentages_of_empty_count(self):
        count = LocCount(name="empty")
        assert count.percentage(RfidCategory.READ_WRITE) == 0.0

    def test_merge(self):
        a = LocCount(name="a")
        a.by_category[RfidCategory.READ_WRITE] = 2
        b = LocCount(name="b")
        b.by_category[RfidCategory.READ_WRITE] = 3
        b.by_category[RfidCategory.CONCURRENCY] = 1
        merged = a.merged_with(b, "ab")
        assert merged.by_category[RfidCategory.READ_WRITE] == 5
        assert merged.total == 6


class TestRealImplementations:
    """The reproduction's actual Figure 2 shape, asserted as invariants."""

    def comparison(self):
        return compare_implementations(
            [handcrafted], [morena_app, morena_config]
        )

    def test_both_implementations_are_annotated(self):
        comparison = self.comparison()
        assert comparison.handcrafted.total > 0
        assert comparison.morena.total > 0

    def test_substantial_loc_reduction(self):
        """Paper: 197 vs 36, a factor ~5. Shape: at least 3x."""
        assert self.comparison().reduction_factor >= 3.0

    def test_morena_needs_no_concurrency_code(self):
        comparison = self.comparison()
        assert comparison.morena.by_category[RfidCategory.CONCURRENCY] == 0

    def test_handcrafted_needs_substantial_concurrency_code(self):
        comparison = self.comparison()
        handcrafted_share = comparison.handcrafted.percentage(
            RfidCategory.CONCURRENCY
        )
        assert handcrafted_share > 10.0

    def test_morena_shifts_focus_to_event_handling(self):
        """Paper: 'MORENA shifts the focus to event handling'."""
        comparison = self.comparison()
        percentages = comparison.morena.percentages()
        assert percentages[RfidCategory.EVENT_HANDLING] == max(percentages.values())

    def test_every_category_smaller_in_morena(self):
        comparison = self.comparison()
        for category in CATEGORIES:
            assert (
                comparison.morena.by_category[category]
                <= comparison.handcrafted.by_category[category]
            )

    def test_count_module_matches_manual_count(self):
        count = count_module(morena_config)
        assert count.by_category[RfidCategory.DATA_CONVERSION] == 2

    def test_format_table_renders(self):
        text = self.comparison().format_table()
        assert "Figure 2 (left)" in text
        assert "Figure 2 (right)" in text
        assert "concurrency" in text
        assert "TOTAL" in text
