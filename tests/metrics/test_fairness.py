"""Jain's index, nearest-rank percentiles and latency summaries."""

import pytest

from repro.metrics import LatencySummary, jains_index, percentile


class TestJainsIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jains_index([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_scores_one_over_n(self):
        assert jains_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert jains_index([7.0] + [0.0] * 7) == pytest.approx(1 / 8)

    def test_mild_skew_scores_between(self):
        value = jains_index([4.0, 5.0, 6.0, 5.0])
        assert 0.9 < value < 1.0

    def test_degenerate_samples_are_trivially_fair(self):
        assert jains_index([]) == 1.0
        assert jains_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        sample = [1.0, 2.0, 3.0]
        assert jains_index(sample) == pytest.approx(
            jains_index([x * 1000 for x in sample])
        )


class TestPercentile:
    def test_nearest_rank_endpoints(self):
        sample = [3.0, 1.0, 2.0, 4.0]
        assert percentile(sample, 0) == 1.0
        assert percentile(sample, 100) == 4.0

    def test_median_of_even_sample_is_lower_middle(self):
        # Nearest-rank, not interpolated: small tag populations should
        # not pretend to sub-sample precision.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_p99_of_small_sample_is_the_max(self):
        assert percentile(list(range(8)), 99) == 7

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencySummary:
    def test_summary_fields(self):
        summary = LatencySummary([0.4, 0.1, 0.2, 0.3])
        assert summary.count == 4
        assert summary.p50 == 0.2
        assert summary.p99 == 0.4
        assert summary.min == 0.1
        assert summary.max == 0.4
        assert summary.mean == pytest.approx(0.25)

    def test_as_dict_is_json_ready(self):
        row = LatencySummary([0.5]).as_dict()
        assert row == {
            "count": 1,
            "p50_seconds": 0.5,
            "p99_seconds": 0.5,
            "min_seconds": 0.5,
            "max_seconds": 0.5,
            "mean_seconds": 0.5,
        }

    def test_empty_sample_yields_none_fields(self):
        summary = LatencySummary([])
        assert summary.count == 0
        assert summary.as_dict()["p50_seconds"] is None
        assert "empty" in repr(summary)


class TestLatencySummaryMerge:
    def test_merge_of_empties_is_empty(self):
        merged = LatencySummary([]).merge(LatencySummary([]))
        assert merged.count == 0
        assert merged.p99 is None

    def test_merge_with_empty_is_identity(self):
        summary = LatencySummary([0.1, 0.2, 0.3])
        for merged in (
            summary.merge(LatencySummary([])),
            LatencySummary([]).merge(summary),
        ):
            assert merged.as_dict() == summary.as_dict()

    def test_single_sample_merge(self):
        merged = LatencySummary([0.5]) + LatencySummary([0.1])
        assert merged.count == 2
        assert merged.min == 0.1
        assert merged.max == 0.5

    def test_merged_percentiles_are_exact(self):
        """Shard-wise merge must equal summarizing the union directly."""
        shard_a = [0.001 * i for i in range(1, 60)]
        shard_b = [0.010 * i for i in range(1, 40)]
        shard_c = [5.0, 0.0005]
        merged = LatencySummary.merged(
            LatencySummary(part) for part in (shard_a, shard_b, shard_c)
        )
        direct = LatencySummary(shard_a + shard_b + shard_c)
        assert merged.as_dict() == direct.as_dict()
        assert merged.count == len(shard_a) + len(shard_b) + len(shard_c)

    def test_merged_classmethod_of_nothing_is_empty(self):
        assert LatencySummary.merged([]).count == 0

    def test_merge_rejects_non_summary(self):
        with pytest.raises(TypeError):
            LatencySummary([0.1]).merge([0.2])  # type: ignore[arg-type]
