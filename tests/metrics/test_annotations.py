"""Unit tests for the region annotation parser."""

import pytest

from repro.metrics.annotations import AnnotationError, RfidCategory, parse_regions


class TestParsing:
    def test_single_region(self):
        source = "\n".join(
            [
                "x = 1",
                "# @rfid: read-write",
                "do_read()",
                "do_write()",
                "# @rfid: end",
                "y = 2",
            ]
        )
        assert parse_regions(source) == [(RfidCategory.READ_WRITE, 3, 4)]

    def test_multiple_regions(self):
        source = "\n".join(
            [
                "# @rfid: event-handling",
                "a()",
                "# @rfid: end",
                "# @rfid: concurrency",
                "b()",
                "c()",
                "# @rfid: end",
            ]
        )
        regions = parse_regions(source)
        assert [r[0] for r in regions] == [
            RfidCategory.EVENT_HANDLING,
            RfidCategory.CONCURRENCY,
        ]

    def test_empty_region(self):
        source = "# @rfid: data-conversion\n# @rfid: end"
        assert parse_regions(source) == [(RfidCategory.DATA_CONVERSION, 2, 1)]

    def test_indented_markers(self):
        source = "    # @rfid: failure-handling\n    x()\n    # @rfid: end"
        assert parse_regions(source) == [(RfidCategory.FAILURE_HANDLING, 2, 2)]

    def test_no_regions(self):
        assert parse_regions("plain = code\n") == []

    def test_marker_with_trailing_text_is_ignored(self):
        source = "# @rfid: end of an era\nx = 1"
        assert parse_regions(source) == []


class TestErrors:
    def test_unclosed_region(self):
        with pytest.raises(AnnotationError):
            parse_regions("# @rfid: read-write\nx()")

    def test_end_without_open(self):
        with pytest.raises(AnnotationError):
            parse_regions("# @rfid: end")

    def test_nested_regions_rejected(self):
        source = "# @rfid: read-write\n# @rfid: concurrency\n# @rfid: end\n# @rfid: end"
        with pytest.raises(AnnotationError):
            parse_regions(source)

    def test_unknown_category(self):
        with pytest.raises(AnnotationError) as excinfo:
            parse_regions("# @rfid: network-stuff\n# @rfid: end")
        assert "event-handling" in str(excinfo.value)
