"""morelint rules against the fixture pairs: each rule must flag its
``*_bad.py`` fixture and stay silent on its ``*_clean.py`` twin."""

import pathlib

import pytest

from repro.analysis.engine import lint_source
from repro.analysis.model import Severity, all_rules, get_rule

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

RULE_IDS = ["MOR001", "MOR002", "MOR003", "MOR004", "MOR005", "MOR006", "MOR007"]


def lint_fixture(name: str, rule_id: str):
    path = FIXTURES / name
    return lint_source(
        str(path), path.read_text(), rules=[get_rule(rule_id)]
    )


class TestCatalogue:
    def test_all_rules_registered(self):
        assert [rule.id for rule in all_rules()] == RULE_IDS

    def test_every_rule_has_summary_and_hint(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.autofix_hint
            assert rule.severity in (Severity.ERROR, Severity.WARNING)


@pytest.mark.parametrize("rule_id", RULE_IDS)
class TestFixturePairs:
    def test_bad_fixture_is_flagged(self, rule_id):
        findings = lint_fixture(f"{rule_id.lower()}_bad.py", rule_id)
        assert findings, f"{rule_id} found nothing in its bad fixture"
        assert all(f.rule_id == rule_id for f in findings)
        assert all(f.line > 0 for f in findings)

    def test_clean_fixture_is_silent(self, rule_id):
        findings = lint_fixture(f"{rule_id.lower()}_clean.py", rule_id)
        assert findings == [], [str(f) for f in findings]


class TestMor001:
    def test_flags_each_blocking_shape(self):
        findings = lint_fixture("mor001_bad.py", "MOR001")
        flagged = {f.line for f in findings}
        assert len(flagged) >= 4  # sleep, future wait, open, thread join

    def test_sockets_gate_on_receiver_name(self):
        source = (
            "class A:\n"
            "    def when_discovered(self, thing):\n"
            "        thing.connect(self.wifi)\n"
            "        self.sock.connect((addr, 1))\n"
        )
        findings = lint_source("x.py", source)
        mor001 = [f for f in findings if f.rule_id == "MOR001"]
        assert len(mor001) == 1
        assert "sock.connect" in mor001[0].message


class TestMor002:
    def test_thing_level_is_error_reference_level_is_warning(self):
        findings = lint_fixture("mor002_bad.py", "MOR002")
        severities = {}
        for finding in findings:
            method = finding.message.split("(")[0]
            severities[method] = finding.severity
        assert severities["save_async"] is Severity.ERROR
        assert severities["initialize"] is Severity.ERROR
        assert severities["broadcast"] is Severity.ERROR
        assert severities["read"] is Severity.WARNING


class TestMor003:
    def test_flags_each_unserializable_kind(self):
        findings = lint_fixture("mor003_bad.py", "MOR003")
        text = " ".join(f.message for f in findings)
        for field in ("lock", "worker", "on_change", "log", "queue"):
            assert field in text, f"field {field!r} not flagged"

    def test_flags_transient_naming_no_field(self):
        findings = lint_fixture("mor003_bad.py", "MOR003")
        assert any("ghost" in f.message for f in findings)


class TestMor005:
    def test_merge_key_on_write_raw_is_sanctioned(self):
        source = (
            "def renew(reference, message):\n"
            "    reference.write_raw(message, merge_key='lease-renew:a')\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR005")]) == []

    def test_merge_key_on_converted_write_is_flagged(self):
        source = (
            "def renew(reference, record):\n"
            "    reference.write(record, merge_key='lease-renew:a')\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR005")])
        assert len(findings) == 1
        assert "merge_key" in findings[0].message

    def test_coalesce_on_raw_write_still_flagged(self):
        source = (
            "def push(reference, message):\n"
            "    reference.write_raw(message, coalesce=True)\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR005")])
        assert len(findings) == 1
        assert "merge_key" in findings[0].message  # hint points at the hook


class TestMor006:
    def test_flags_every_off_looper_kind(self):
        findings = lint_fixture("mor006_bad.py", "MOR006")
        text = " ".join(f.message for f in findings)
        assert "private thread" in text
        assert "radio thread" in text
        assert "peer's thread" in text


class TestMor007:
    def test_flags_each_blocking_shape(self):
        findings = lint_fixture("mor007_bad.py", "MOR007")
        flagged = {f.line for f in findings}
        # sleep, future wait, looper.sync, open, socket recv
        assert len(flagged) >= 5

    def test_awaited_calls_are_not_blocking(self):
        source = (
            "import asyncio\n"
            "async def pump(future, sock):\n"
            "    await asyncio.wait_for(future, timeout=1.0)\n"
            "    await sock.connect((addr, 1))\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR007")]) == []

    def test_module_level_coroutines_are_covered(self):
        source = (
            "import time\n"
            "async def tick():\n"
            "    time.sleep(1.0)\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR007")])
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "tick" in findings[0].message

    def test_nested_sync_function_escapes(self):
        source = (
            "import time\n"
            "async def outer(loop):\n"
            "    def helper():\n"
            "        time.sleep(1.0)\n"
            "    await loop.run_in_executor(None, helper)\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR007")]) == []


class TestEngine:
    def test_syntax_error_becomes_mor000(self):
        findings = lint_source("broken.py", "def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule_id == "MOR000"
        assert findings[0].severity is Severity.ERROR

    def test_findings_sorted_by_position(self):
        findings = lint_fixture("mor002_bad.py", "MOR002")
        lines = [f.line for f in findings]
        assert lines == sorted(lines)

    def test_finding_format_is_gcc_style(self):
        findings = lint_fixture("mor004_bad.py", "MOR004")
        rendered = findings[0].format(show_hint=False)
        assert rendered.startswith(findings[0].path)
        assert f":{findings[0].line}:" in rendered
        assert "MOR004" in rendered
