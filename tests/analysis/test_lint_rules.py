"""morelint rules against the fixture pairs: each rule must flag its
``*_bad.py`` fixture and stay silent on its ``*_clean.py`` twin."""

import pathlib

import pytest

from repro.analysis.engine import lint_source
from repro.analysis.model import Severity, all_rules, get_rule

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

RULE_IDS = [
    "MOR001",
    "MOR002",
    "MOR003",
    "MOR004",
    "MOR005",
    "MOR006",
    "MOR007",
    "MOR008",
    "MOR009",
    "MOR010",
    "MOR011",
    "MOR012",
]


def lint_fixture(name: str, rule_id: str):
    path = FIXTURES / name
    return lint_source(
        str(path), path.read_text(), rules=[get_rule(rule_id)]
    )


class TestCatalogue:
    def test_all_rules_registered(self):
        assert [rule.id for rule in all_rules()] == RULE_IDS

    def test_every_rule_has_summary_and_hint(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.autofix_hint
            assert rule.severity in (Severity.ERROR, Severity.WARNING)


@pytest.mark.parametrize("rule_id", RULE_IDS)
class TestFixturePairs:
    def test_bad_fixture_is_flagged(self, rule_id):
        findings = lint_fixture(f"{rule_id.lower()}_bad.py", rule_id)
        assert findings, f"{rule_id} found nothing in its bad fixture"
        assert all(f.rule_id == rule_id for f in findings)
        assert all(f.line > 0 for f in findings)

    def test_clean_fixture_is_silent(self, rule_id):
        findings = lint_fixture(f"{rule_id.lower()}_clean.py", rule_id)
        assert findings == [], [str(f) for f in findings]


class TestMor001:
    def test_flags_each_blocking_shape(self):
        findings = lint_fixture("mor001_bad.py", "MOR001")
        flagged = {f.line for f in findings}
        assert len(flagged) >= 4  # sleep, future wait, open, thread join

    def test_sockets_gate_on_receiver_name(self):
        source = (
            "class A:\n"
            "    def when_discovered(self, thing):\n"
            "        thing.connect(self.wifi)\n"
            "        self.sock.connect((addr, 1))\n"
        )
        findings = lint_source("x.py", source)
        mor001 = [f for f in findings if f.rule_id == "MOR001"]
        assert len(mor001) == 1
        assert "sock.connect" in mor001[0].message


class TestMor002:
    def test_thing_level_is_error_reference_level_is_warning(self):
        findings = lint_fixture("mor002_bad.py", "MOR002")
        severities = {}
        for finding in findings:
            method = finding.message.split("(")[0]
            severities[method] = finding.severity
        assert severities["save_async"] is Severity.ERROR
        assert severities["initialize"] is Severity.ERROR
        assert severities["broadcast"] is Severity.ERROR
        assert severities["read"] is Severity.WARNING


class TestMor003:
    def test_flags_each_unserializable_kind(self):
        findings = lint_fixture("mor003_bad.py", "MOR003")
        text = " ".join(f.message for f in findings)
        for field in ("lock", "worker", "on_change", "log", "queue"):
            assert field in text, f"field {field!r} not flagged"

    def test_flags_transient_naming_no_field(self):
        findings = lint_fixture("mor003_bad.py", "MOR003")
        assert any("ghost" in f.message for f in findings)


class TestMor005:
    def test_merge_key_on_write_raw_is_sanctioned(self):
        source = (
            "def renew(reference, message):\n"
            "    reference.write_raw(message, merge_key='lease-renew:a')\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR005")]) == []

    def test_merge_key_on_converted_write_is_flagged(self):
        source = (
            "def renew(reference, record):\n"
            "    reference.write(record, merge_key='lease-renew:a')\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR005")])
        assert len(findings) == 1
        assert "merge_key" in findings[0].message

    def test_coalesce_on_raw_write_still_flagged(self):
        source = (
            "def push(reference, message):\n"
            "    reference.write_raw(message, coalesce=True)\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR005")])
        assert len(findings) == 1
        assert "merge_key" in findings[0].message  # hint points at the hook


class TestMor006:
    def test_flags_every_off_looper_kind(self):
        findings = lint_fixture("mor006_bad.py", "MOR006")
        text = " ".join(f.message for f in findings)
        assert "private thread" in text
        assert "radio thread" in text
        assert "peer's thread" in text


class TestMor007:
    def test_flags_each_blocking_shape(self):
        findings = lint_fixture("mor007_bad.py", "MOR007")
        flagged = {f.line for f in findings}
        # sleep, future wait, looper.sync, open, socket recv
        assert len(flagged) >= 5

    def test_awaited_calls_are_not_blocking(self):
        source = (
            "import asyncio\n"
            "async def pump(future, sock):\n"
            "    await asyncio.wait_for(future, timeout=1.0)\n"
            "    await sock.connect((addr, 1))\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR007")]) == []

    def test_module_level_coroutines_are_covered(self):
        source = (
            "import time\n"
            "async def tick():\n"
            "    time.sleep(1.0)\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR007")])
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "tick" in findings[0].message

    def test_nested_sync_function_escapes(self):
        source = (
            "import time\n"
            "async def outer(loop):\n"
            "    def helper():\n"
            "        time.sleep(1.0)\n"
            "    await loop.run_in_executor(None, helper)\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR007")]) == []


class TestMor005Spellings:
    """The satellite recognizer: every spelling of the raw-write API."""

    def test_future_spelling_coalesce_flagged(self):
        source = (
            "def push(reference, message):\n"
            "    write_raw_future(reference, message, coalesce=True)\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR005")])
        assert len(findings) == 1
        assert "write_raw" in findings[0].message

    def test_future_spelling_merge_key_sanctioned(self):
        source = (
            "def renew(reference, message):\n"
            "    write_raw_future(reference, message, merge_key='lease:a')\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR005")]) == []

    def test_aio_spelling_merge_key_sanctioned(self):
        source = (
            "async def renew(reference, message):\n"
            "    await reference.aio.write_raw(message, merge_key='lease:a')\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR005")]) == []

    def test_aio_spelling_coalesce_flagged(self):
        source = (
            "async def push(reference, message):\n"
            "    await reference.aio.write_raw(message, coalesce=True)\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR005")])
        assert len(findings) == 1

    def test_merge_key_on_write_future_flagged(self):
        source = (
            "def push(reference, obj):\n"
            "    write_future(reference, obj, merge_key='x')\n"
        )
        findings = lint_source("x.py", source, rules=[get_rule("MOR005")])
        assert len(findings) == 1


class TestMor008:
    def test_cross_function_halt_is_flow_sensitive(self):
        """The TP a syntactic engine cannot catch: the halt happens in
        another function, reached through the parameter-effect index."""
        findings = lint_fixture("mor008_bad.py", "MOR008")
        cross = [f for f in findings if "read()" in f.message and f.line == 21]
        assert cross, [str(f) for f in findings]

    def test_branch_separation_suppressed(self):
        """The FP the flow engine suppresses: halt and use on disjoint
        paths of the same function."""
        source = (
            "def f(ref, payload, done):\n"
            "    if done:\n"
            "        ref.stop()\n"
            "    else:\n"
            "        ref.write(payload)\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR008")]) == []

    def test_rebinding_kills_state(self):
        source = (
            "def f(ref, port, payload):\n"
            "    ref.stop()\n"
            "    ref = port.reference()\n"
            "    ref.write(payload)\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR008")]) == []

    def test_messages_name_the_halt_line(self):
        findings = lint_fixture("mor008_bad.py", "MOR008")
        assert any("line 5" in f.message for f in findings)

    def test_severity_is_error(self):
        for finding in lint_fixture("mor008_bad.py", "MOR008"):
            assert finding.severity is Severity.ERROR


class TestMor009:
    def test_distinguishes_exception_path_leaks(self):
        findings = lint_fixture("mor009_bad.py", "MOR009")
        messages = " ".join(f.message for f in findings)
        assert "every path" in messages  # the early-return leak
        assert "exception path" in messages  # the missing finally

    def test_finding_anchors_at_the_acquire(self):
        findings = lint_fixture("mor009_bad.py", "MOR009")
        source = (FIXTURES / "mor009_bad.py").read_text().splitlines()
        for finding in findings:
            assert "acquire" in source[finding.line - 1]

    def test_finally_release_is_clean(self):
        source = (
            "def f(tag):\n"
            "    mgr_lock = make_manager(tag)\n"
            "    mgr_lock.acquire(30.0)\n"
            "    try:\n"
            "        tag.write(b'x')\n"
            "    finally:\n"
            "        mgr_lock.release()\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR009")]) == []

    def test_caller_owned_parameter_is_clean(self):
        source = (
            "def helper(lease_manager):\n"
            "    lease_manager.acquire(30.0)\n"
        )
        assert lint_source("x.py", source, rules=[get_rule("MOR009")]) == []


class TestMor010:
    def test_fences_clear_the_hazard(self):
        findings = lint_fixture("mor010_clean.py", "MOR010")
        assert findings == [], [str(f) for f in findings]

    def test_message_names_the_queued_write(self):
        findings = lint_fixture("mor010_bad.py", "MOR010")
        assert any("line 5" in f.message for f in findings)

    def test_severity_is_warning(self):
        for finding in lint_fixture("mor010_bad.py", "MOR010"):
            assert finding.severity is Severity.WARNING


class TestMor011:
    def test_cross_method_reachability(self):
        """_bump() is only dangerous because a listener calls it --
        reachability through the intra-class call graph."""
        findings = lint_fixture("mor011_bad.py", "MOR011")
        assert any("_bump" in f.message for f in findings)

    def test_unreachable_method_suppressed(self):
        """The precision case: a bare write in a method no concurrent
        entry point can reach stays silent."""
        findings = lint_fixture("mor011_clean.py", "MOR011")
        assert findings == [], [str(f) for f in findings]

    def test_constructor_writes_exempt(self):
        findings = lint_fixture("mor011_bad.py", "MOR011")
        assert all(f.line > 9 for f in findings)  # none inside __init__

    def test_cross_file_base_class_discipline(self, tmp_path):
        """A base class in another file declares the lock discipline;
        the subclass's bare listener write is flagged project-wide."""
        base = tmp_path / "base_activity.py"
        base.write_text(
            "import threading\n"
            "class CounterBase:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self.count = 0\n"
        )
        sub = tmp_path / "screen.py"
        sub.write_text(
            "from base_activity import CounterBase\n"
            "class Screen(CounterBase):\n"
            "    def on_tag_detected(self, tag):\n"
            "        self.count = self.count + 1\n"
        )
        from repro.analysis.engine import lint_paths

        findings = lint_paths([str(tmp_path)], select=["MOR011"])
        assert len(findings) == 1
        assert findings[0].path == str(sub)
        assert "_lock" in findings[0].message

        # The same subclass file linted *alone* cannot know the base's
        # discipline -- the project index is what makes this finding.
        assert (
            lint_source(str(sub), sub.read_text(), rules=[get_rule("MOR011")])
            == []
        )


class TestMor012:
    def test_one_finding_per_file_at_first_site(self):
        findings = lint_fixture("mor012_bad.py", "MOR012")
        assert len(findings) == 1
        assert findings[0].line == 5  # the first literal site

    def test_counts_in_message(self):
        findings = lint_fixture("mor012_bad.py", "MOR012")
        assert "7 call sites" in findings[0].message
        assert "5 functions" in findings[0].message

    def test_below_threshold_is_silent(self):
        findings = lint_fixture("mor012_clean.py", "MOR012")
        assert findings == [], [str(f) for f in findings]

    def test_cross_file_scatter_aggregates(self, tmp_path):
        """Two files with two sites each: neither alone crosses the
        threshold, together they do -- and each offending file gets
        exactly one finding."""
        for index in range(2):
            path = tmp_path / f"pusher_{index}.py"
            path.write_text(
                f"def push_a{index}(ref, p):\n"
                "    ref.write(p, coalesce=True)\n"
                f"def push_b{index}(ref, p):\n"
                "    ref.write(p, retries=3)\n"
            )
        from repro.analysis.engine import lint_paths

        findings = lint_paths([str(tmp_path)], select=["MOR012"])
        assert len(findings) == 2
        assert {f.line for f in findings} == {2}


class TestEngine:
    def test_syntax_error_becomes_mor000(self):
        findings = lint_source("broken.py", "def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule_id == "MOR000"
        assert findings[0].severity is Severity.ERROR

    def test_findings_sorted_by_position(self):
        findings = lint_fixture("mor002_bad.py", "MOR002")
        lines = [f.line for f in findings]
        assert lines == sorted(lines)

    def test_finding_format_is_gcc_style(self):
        findings = lint_fixture("mor004_bad.py", "MOR004")
        rendered = findings[0].format(show_hint=False)
        assert rendered.startswith(findings[0].path)
        assert f":{findings[0].line}:" in rendered
        assert "MOR004" in rendered
