"""Unit tests for the dataflow core: CFG shape, solver, resource machine."""

import ast

import pytest

from repro.analysis.dataflow import (
    EXC,
    FALL,
    RETURN,
    ResourceAnalysis,
    assigned_names,
    build_cfg,
    receiver_key,
    stmt_calls,
)
from repro.analysis.dataflow.cfg import header_nodes
from repro.analysis.dataflow.resources import token_exceptional, token_line


def first_function(source: str) -> ast.AST:
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in source")


def edges(cfg):
    out = set()
    for block in cfg.blocks:
        for target, kind in block.succs:
            out.add((block.id, target.id, kind))
    return out


class TestCfg:
    def test_straight_line_chains_to_exit(self):
        cfg = build_cfg(first_function("def f(x):\n    a = 1\n    b = 2\n"))
        kinds = {kind for _, _, kind in edges(cfg)}
        assert kinds == {FALL}

    def test_if_has_two_way_branch(self):
        fn = first_function(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    c = 3\n"
        )
        cfg = build_cfg(fn)
        headers = [b for b in cfg.blocks if b.label == "if"]
        assert len(headers) == 1
        assert len(headers[0].succs) == 2

    def test_return_edges_to_exit(self):
        fn = first_function("def f(x):\n    if x:\n        return 1\n    return 2\n")
        cfg = build_cfg(fn)
        returns = [e for e in edges(cfg) if e[2] == RETURN]
        assert len(returns) == 2
        assert all(target == cfg.exit.id for _, target, _ in returns)

    def test_call_statements_get_exception_edges(self):
        fn = first_function("def f(x):\n    g(x)\n")
        cfg = build_cfg(fn)
        assert any(kind == EXC for _, _, kind in edges(cfg))

    def test_pure_assignments_have_no_exception_edges(self):
        fn = first_function("def f(x):\n    a = x\n    b = a\n")
        cfg = build_cfg(fn)
        assert not any(kind == EXC for _, _, kind in edges(cfg))

    def test_try_body_exceptions_route_to_handler(self):
        fn = first_function(
            "def f(x):\n"
            "    try:\n"
            "        g(x)\n"
            "    except ValueError:\n"
            "        h(x)\n"
        )
        cfg = build_cfg(fn)
        handler = next(b for b in cfg.blocks if b.label == "handler")
        exc_targets = {
            target for source, target, kind in edges(cfg) if kind == EXC
        }
        assert handler.id in exc_targets

    def test_finally_on_both_paths(self):
        fn = first_function(
            "def f(x):\n"
            "    try:\n"
            "        g(x)\n"
            "    finally:\n"
            "        h(x)\n"
        )
        cfg = build_cfg(fn)
        final = next(b for b in cfg.blocks if b.label == "finally")
        incoming = {kind for _, kind in cfg.predecessors(final)}
        assert FALL in incoming and EXC in incoming

    def test_while_true_has_no_normal_exit(self):
        fn = first_function("def f():\n    while True:\n        pass\n")
        cfg = build_cfg(fn)
        header = next(b for b in cfg.blocks if b.label == "loop")
        targets = {target.label for target, _ in header.succs}
        assert "join" not in targets

    def test_loop_back_edge(self):
        fn = first_function("def f(xs):\n    for x in xs:\n        g(x)\n")
        cfg = build_cfg(fn)
        assert any(kind == "back" for _, _, kind in edges(cfg))


class TestHeaderNodes:
    def test_if_header_excludes_body(self):
        stmt = ast.parse("if c(x):\n    d(y)\n").body[0]
        nodes = header_nodes(stmt)
        dumped = " ".join(ast.dump(node) for node in nodes)
        assert "'c'" in dumped and "'d'" not in dumped

    def test_with_header_includes_context_and_alias(self):
        stmt = ast.parse("with open(p) as f:\n    g(f)\n").body[0]
        dumped = " ".join(ast.dump(node) for node in header_nodes(stmt))
        assert "'open'" in dumped and "'g'" not in dumped


class TestStmtCalls:
    def test_nested_lambda_excluded(self):
        stmt = ast.parse("f(lambda: g())\n").body[0]
        names = [
            call.func.id
            for call in stmt_calls(stmt)
            if isinstance(call.func, ast.Name)
        ]
        assert names == ["f"]

    def test_source_order(self):
        stmt = ast.parse("h(a(), b())\n").body[0]
        names = [call.func.id for call in stmt_calls(stmt)]
        assert names == ["h", "a", "b"] or names == ["a", "b", "h"]


class TestAssignedNames:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("x = 1", ["x"]),
            ("x, y = pair", ["x", "y"]),
            ("obj.attr = 1", ["obj.attr"]),
            ("for i in xs:\n    pass", ["i"]),
            ("with ctx() as h:\n    pass", ["h"]),
        ],
    )
    def test_shapes(self, source, expected):
        stmt = ast.parse(source).body[0]
        assert assigned_names(stmt) == expected


class TestReceiverKey:
    def test_plain_and_aio_normalize_to_same_key(self):
        plain = ast.parse("ref.write_raw(m)").body[0].value
        aio = ast.parse("ref.aio.write_raw(m)").body[0].value
        assert receiver_key(plain) == receiver_key(aio) == "ref"

    def test_dotted_receiver(self):
        call = ast.parse("self.ref.write(m)").body[0].value
        assert receiver_key(call) == "self.ref"


def classify_halt(call):
    if isinstance(call.func, ast.Attribute):
        key = receiver_key(call)
        if call.func.attr == "stop":
            yield ("seed", key, "halted")
        elif call.func.attr == "use":
            yield ("use", key)
        elif call.func.attr == "revive":
            yield ("clear", key)


class TestResourceAnalysis:
    def run(self, source, **kwargs):
        analysis = ResourceAnalysis(classify_halt, **kwargs)
        return analysis.run(first_function(source))

    def test_use_after_seed_recorded(self):
        result = self.run("def f(r):\n    r.stop()\n    r.use()\n")
        assert len(result.uses) == 1
        assert result.uses[0].key == "r"

    def test_clear_stops_tracking(self):
        result = self.run("def f(r):\n    r.stop()\n    r.revive()\n    r.use()\n")
        assert result.uses == []

    def test_join_unions_branch_states(self):
        result = self.run(
            "def f(r, c):\n"
            "    if c:\n"
            "        r.stop()\n"
            "    r.use()\n"
        )
        assert len(result.uses) == 1

    def test_loop_reaches_fixpoint_with_back_edge(self):
        # The use precedes the seed in the body; only the back edge
        # makes the state reach it.
        result = self.run(
            "def f(r, xs):\n"
            "    for x in xs:\n"
            "        r.use()\n"
            "        r.stop()\n"
        )
        assert len(result.uses) == 1

    def test_exceptional_exit_tokens_marked(self):
        result = self.run(
            "def f(r, x):\n"
            "    r.stop()\n"
            "    g(x)\n",
            mark_exceptional=True,
        )
        tokens = result.exit_state.get("r", frozenset())
        assert any(token_exceptional(token) for token in tokens)
        assert any(not token_exceptional(token) for token in tokens)
        assert all(token_line(token) == 2 for token in tokens)

    def test_seed_does_not_travel_its_own_exception_edge(self):
        # If stop() itself raised, the halted state never existed: the
        # optimistic exception semantics keep acquire/try/finally
        # idioms quiet.
        result = self.run(
            "def f(r):\n"
            "    try:\n"
            "        r.stop()\n"
            "    except Exception:\n"
            "        r.use()\n"
        )
        assert result.uses == []
