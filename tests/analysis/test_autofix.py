"""morelint --fix: mechanical edits, application rules, idempotence."""

import ast
import pathlib
import shutil

import pytest

from repro.analysis.autofix import apply_edits
from repro.analysis.engine import lint_paths
from repro.analysis.lint import main as lint_main
from repro.analysis.model import SourceEdit

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _fixed(tmp_path, fixture, select):
    """Copy ``fixture`` into tmp, run ``--fix --select`` on it, return
    (exit code, rewritten source, path)."""
    target = tmp_path / fixture
    shutil.copy(FIXTURES / fixture, target)
    code = lint_main(["--fix", "--select", select, str(target)])
    return code, target.read_text(), target


class TestApplyEdits:
    def test_duplicate_edits_collapse(self):
        edit = SourceEdit(1, 0, 1, 3, "xyz")
        out, applied = apply_edits("abc def", [edit, edit, edit])
        assert out == "xyz def"
        assert applied == 1

    def test_overlapping_edits_skip_the_narrower(self):
        wide = SourceEdit(1, 0, 1, 7, "WIDE")
        narrow = SourceEdit(1, 2, 1, 5, "no")
        out, applied = apply_edits("abc def", [wide, narrow])
        assert out == "WIDE"
        assert applied == 1

    def test_disjoint_edits_apply_back_to_front(self):
        first = SourceEdit(1, 0, 1, 1, "A")
        second = SourceEdit(2, 0, 2, 1, "B")
        out, applied = apply_edits("a\nb\n", [first, second])
        assert out == "A\nB\n"
        assert applied == 2

    def test_insertion_is_zero_width(self):
        insert = SourceEdit(1, 3, 1, 3, "X")
        out, applied = apply_edits("abcdef", [insert])
        assert out == "abcXdef"
        assert applied == 1


class TestFixMor005:
    def test_drops_coalesce_on_raw_and_locking_calls(self, tmp_path, capsys):
        code, source, _ = _fixed(tmp_path, "mor005_bad.py", "MOR005")
        ast.parse(source)
        # The only surviving mention is the module docstring's.
        assert source.count("coalesce=True") == 1
        assert "coalesce=True" in source.splitlines()[0]
        # The lease-receiver write() pins the keyword off instead of
        # dropping it: save_async/write may coalesce by default.
        assert "coalesce=False" in source
        # The stray merge_key is a judgement call, not a mechanical fix.
        assert "merge_key" in source
        assert code == 1  # merge_key error remains after the fix pass

    def test_fix_is_idempotent(self, tmp_path, capsys):
        _, once, target = _fixed(tmp_path, "mor005_bad.py", "MOR005")
        lint_main(["--fix", "--select", "MOR005", str(target)])
        assert target.read_text() == once


class TestFixMor003:
    def test_extends_existing_transient_declaration(self, tmp_path, capsys):
        code, source, target = _fixed(tmp_path, "mor003_bad.py", "MOR003")
        ast.parse(source)
        for name in ("lock", "worker", "on_change", "log"):
            assert f"'{name}'" in source or f'"{name}"' in source
        # One combined rewrite, not one declaration per finding
        # (comments also mention __transient__, hence the "= " suffix).
        assert source.count("__transient__ = ") == 2  # Sensor + Derived
        findings = lint_paths([str(target)], select=["MOR003"])
        assert len(findings) == 1  # only the stale 'ghost' entry survives
        assert "ghost" in findings[0].message
        assert code == 1  # ghost is an error and has no mechanical fix

    def test_inserts_declaration_into_subclass_without_one(
        self, tmp_path, capsys
    ):
        _, source, _ = _fixed(tmp_path, "mor003_bad.py", "MOR003")
        tree = ast.parse(source)
        derived = next(
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef) and node.name == "Derived"
        )
        first = derived.body[0]
        assert isinstance(first, ast.Assign)
        assert first.targets[0].id == "__transient__"
        assert ast.literal_eval(first.value) == ("queue",)


class TestFixMor002:
    def test_stubs_every_missing_failure_listener(self, tmp_path, capsys):
        code, source, target = _fixed(tmp_path, "mor002_bad.py", "MOR002")
        ast.parse(source)
        assert source.count("lambda *args: None") == 4
        # initialize() takes its failure half under on_save_failed.
        assert "on_save_failed=lambda *args: None" in source
        assert lint_paths([str(target)], select=["MOR002"]) == []
        assert code == 0

    def test_fixed_fixture_still_calls_the_same_methods(self, tmp_path, capsys):
        _, source, _ = _fixed(tmp_path, "mor002_bad.py", "MOR002")
        tree = ast.parse(source)
        methods = sorted(
            node.func.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        )
        assert "save_async" in methods
        assert "initialize" in methods
        assert "broadcast" in methods
        assert "read" in methods


class TestFixCorpusIdempotence:
    """One --fix pass converges: a second run is a byte-for-byte no-op,
    and a rule's fixes never disturb what *other* rules report."""

    FIXABLE = ("mor002_bad.py", "mor003_bad.py", "mor005_bad.py")

    def test_second_fix_pass_is_byte_identical(self, tmp_path, capsys):
        for name in self.FIXABLE:
            shutil.copy(FIXTURES / name, tmp_path / name)
        lint_main(["--fix", str(tmp_path)])
        once = {
            name: (tmp_path / name).read_bytes() for name in self.FIXABLE
        }
        lint_main(["--fix", str(tmp_path)])
        twice = {
            name: (tmp_path / name).read_bytes() for name in self.FIXABLE
        }
        assert twice == once
        out = capsys.readouterr().out
        assert "applied 0 fix(es)" in out  # the second pass found nothing

    @pytest.mark.parametrize(
        "fixture, rule",
        [
            ("mor002_bad.py", "MOR002"),
            ("mor003_bad.py", "MOR003"),
            ("mor005_bad.py", "MOR005"),
        ],
    )
    def test_fixes_leave_other_rules_findings_alone(
        self, tmp_path, capsys, fixture, rule
    ):
        target = tmp_path / fixture
        shutil.copy(FIXTURES / fixture, target)

        def others(findings):
            return sorted(
                (f.rule_id, f.message)
                for f in findings
                if f.rule_id != rule
            )

        before = others(lint_paths([str(target)]))
        lint_main(["--fix", "--select", rule, str(target)])
        after = others(lint_paths([str(target)]))
        assert after == before


class TestFixReporting:
    def test_fix_reports_applied_count(self, tmp_path, capsys):
        target = tmp_path / "mor005_bad.py"
        shutil.copy(FIXTURES / "mor005_bad.py", target)
        lint_main(["--fix", "--select", "MOR005", str(target)])
        out = capsys.readouterr().out
        assert "applied 3 fix(es)" in out

    def test_without_fix_files_stay_untouched(self, tmp_path, capsys):
        target = tmp_path / "mor005_bad.py"
        shutil.copy(FIXTURES / "mor005_bad.py", target)
        before = target.read_text()
        lint_main(["--select", "MOR005", str(target)])
        assert target.read_text() == before
