"""Fixture: blocking calls inside coroutine bodies (MOR007 flags these)."""

import time


class SlowKiosk:
    async def checkout(self, ref):
        time.sleep(0.5)  # MOR007: stalls the event loop
        cart = await ref.aio.read()
        return cart

    async def settle(self, reference):
        future = reference.read_future()
        value = future.result()  # MOR007: blocking future wait in a coroutine
        return value

    async def drain(self, looper):
        looper.sync()  # MOR007: looper barrier inside a coroutine
        with open("/tmp/audit.log") as handle:  # MOR007: sync file I/O
            return handle.read()


async def pump(sock):
    data = sock.recv(1024)  # MOR007: blocking socket read on the loop
    return data
