"""Fixture: adapter registration inside hot callbacks (MOR004)."""


class ChurningActivity:
    def when_discovered(self, thing):
        self.gson.register_adapter(MoneyAdapter())  # MOR004: per-event flush
        thing.save_async(
            on_saved=lambda t: self.toast("ok"),
            on_failed=lambda t: self.toast("failed"),
        )

    def on_beam_received(self, obj):
        self.gson.register_adapter(DateAdapter())  # MOR004 again
        self.show(obj)


class MoneyAdapter:
    pass


class DateAdapter:
    pass
