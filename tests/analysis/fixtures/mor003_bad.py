"""Fixture: unserializable state in Thing fields (MOR003)."""

import threading

from repro.things.thing import Thing


class Sensor(Thing):
    __transient__ = ("cache", "ghost")  # MOR003: 'ghost' names no field

    def __init__(self, activity):
        super().__init__(activity)
        self.name = "s1"
        self.cache = {}
        self.lock = threading.Lock()  # MOR003: lock outside __transient__
        self.worker = threading.Thread(target=self.poll)  # MOR003: thread
        self.on_change = lambda: None  # MOR003: callable field
        self.log = open("/tmp/sensor.log")  # MOR003: open handle

    def poll(self):
        pass


class Derived(Sensor):
    def __init__(self, activity):
        super().__init__(activity)
        self.queue = threading.Condition()  # MOR003: still not transient
