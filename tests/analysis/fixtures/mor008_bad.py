"""MOR008 bad fixture: operations on halted references / released leases."""


def straight_line(ref, payload):
    ref.stop()
    ref.write(payload)  # flagged: use after halt


def one_branch(ref, payload, done):
    if done:
        ref.stop()
    ref.read()  # flagged: may run after the halt branch


def retire(reference):
    reference.stop()


def cross_function(ref):
    retire(ref)  # halts via the helper's parameter effect
    ref.read()  # flagged: the old syntactic engine cannot see this


def released_lease(tag_lease, payload):
    tag_lease.release()
    tag_lease.renew(30.0)  # flagged: renewing a released lease guards nothing


def aio_surface(ref):
    ref.stop()
    ref.aio.read_raw()  # flagged: .aio is the same reference
