"""MOR012 clean fixture: one policy object, forwarded everywhere."""

POLICY = CrossTagPolicy(coalesce=True, retries=3, tx_policy="fair")


def push_config(ref, payload, policy=POLICY):
    ref.write(payload, coalesce=policy.coalesce)


def push_manifest(ref, manifest, policy=POLICY):
    ref.write(manifest, coalesce=policy.coalesce, retries=policy.retries)


def push_inventory(ref, items, policy=POLICY):
    ref.write(items, tx_policy=policy.tx_policy)


def local_pair(ref, payload):
    # Two literals inside one function sit below the scatter threshold:
    # volume *and* spread are required before the rule speaks up.
    ref.write(payload, coalesce=True)
    ref.write(payload, coalesce=True)
