"""Fixture: the asynchronous style MOR001 wants (no findings)."""

import time


class PromptActivity:
    def when_discovered(self, thing):
        # Application calls on the thing itself are fine -- connect() here
        # is the app's own method, not a socket.
        if not thing.connect(self.wifi):
            self.toast("could not join")
        thing.save_async(
            on_saved=lambda t: self.toast("saved"),
            on_failed=lambda t: self.toast("save failed"),
        )

    def background_job(self):
        # Not a listener body: blocking is this method's own business.
        time.sleep(0.1)
        self.socket.connect(("host", 1))
