"""MOR011 bad fixture: lock discipline held in one method, dropped in another."""

import threading


class TagCounterActivity:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # ok: constructor writes are thread-private

    def on_tag_detected(self, tag):
        self.count = self.count + 1  # flagged: bare write on a listener path

    def recompute(self):
        with self._lock:
            self.count = 0  # the discipline MOR011 holds the class to


class DelegatingActivity:
    def __init__(self):
        self.stats_lock = threading.Lock()
        self.total = 0

    def on_beam_received(self, obj):
        self._bump()  # reachable through the listener...

    def _bump(self):
        self.total = self.total + 1  # flagged: cross-method reachability

    def flush(self):
        with self.stats_lock:
            self.total = 0
