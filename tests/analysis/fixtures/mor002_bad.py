"""Fixture: success listeners without their failure half (MOR002)."""


class ForgetfulActivity:
    def when_discovered(self, thing):
        thing.save_async(on_saved=lambda t: self.toast("saved"))  # MOR002 error

    def when_discovered_empty(self, empty):
        empty.initialize(
            self.pending, on_saved=lambda t: self.toast("labelled")
        )  # MOR002 error

    def share(self, thing):
        thing.broadcast(on_success=lambda t: self.toast("sent"))  # MOR002 error

    def peek(self, reference):
        reference.read(on_read=lambda r: self.show(r.cached))  # MOR002 warning
