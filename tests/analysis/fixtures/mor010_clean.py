"""MOR010 clean fixture: every read is fenced or ordered."""


def listener_scoped(ref, payload):
    # Reading from the success listener is the sanctioned ordering.
    ref.write(payload, coalesce=True, on_written=lambda r: r.read(), on_failed=log)


def explicit_order(ref, payload):
    ref.write(payload, coalesce=False)  # synchronous queue order
    return ref.read()


def raw_fence(ref, payload, record):
    ref.write(payload, coalesce=True)
    ref.write_raw(record)  # raw writes flush the merge queue
    return ref.read()


def branch_separated(ref, payload, fast):
    if fast:
        ref.write(payload, coalesce=True)
    else:
        return ref.read()  # ok: no queued write on this branch
    return None


def different_tags(ref, other, payload):
    ref.write(payload, coalesce=True)
    return other.read()  # ok: different reference, different queue
