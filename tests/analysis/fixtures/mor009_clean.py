"""MOR009 clean fixture: every acquire is balanced, delegated, or escapes."""


def try_finally(tag):
    lease_manager = make_manager(tag)
    lease_manager.acquire(30.0)
    try:
        tag.write(b"payload")
    finally:
        lease_manager.release()


def renew_counts(tag):
    lease_manager = make_manager(tag)
    lease_manager.acquire(30.0)
    lease_manager.renew(60.0)  # renewal hands the pairing to the keeper


def callback_balances(tag):
    lease_manager = make_manager(tag)

    def done(lease):
        lease_manager.release()

    lease_manager.acquire(30.0, on_acquired=done)


def caller_owned(lease_manager, tag):
    # The manager is a parameter and this function never releases it:
    # the caller owns the lifecycle (the async facade's shape).
    lease_manager.acquire(30.0)
    return tag


def escapes_via_return(tag):
    lease_manager = make_manager(tag)
    lease_manager.acquire(30.0)
    return lease_manager  # the caller releases


def context_managed(tag):
    lease_manager = make_manager(tag)
    with lease_manager.acquire(30.0):
        tag.write(b"payload")
