"""Fixture: runtime-only state properly declared transient (no MOR003)."""

import threading

from repro.things.thing import Thing


class Sensor(Thing):
    __transient__ = ("lock", "on_change")

    def __init__(self, activity):
        super().__init__(activity)
        self.name = "s1"
        self.reading = 0.0
        self.lock = threading.Lock()  # transient: fine
        self.on_change = lambda: None  # transient: fine
        self._worker = threading.Thread(target=self.poll)  # private: fine

    def poll(self):
        pass


class Derived(Sensor):
    __transient__ = ("cond",)  # unions with the base declaration

    def __init__(self, activity):
        super().__init__(activity)
        self.cond = threading.Condition()
        self.label = "derived"


class NotAThing:
    def __init__(self):
        self.lock = threading.Lock()  # plain classes are out of scope
