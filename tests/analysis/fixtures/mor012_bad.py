"""MOR012 bad fixture: policy literals re-pinned at every call site."""


def push_config(ref, payload):
    ref.write(payload, coalesce=True)


def push_manifest(ref, manifest):
    ref.write(manifest, coalesce=True, retries=3)


def push_counter(thing):
    thing.save_async(coalesce=False)


def push_inventory(ref, items):
    ref.write(items, tx_policy="fair")


def push_audit(ref, entry):
    ref.write(entry, retries=5, backoff=0.25)
