"""Fixture: off-looper callbacks mutating captured state (MOR006)."""

import threading


class RacyActivity:
    def on_create(self):
        self.count = 0
        app = self

        def poll():
            app.count += 1  # MOR006: private thread writes shared field

        self.worker = threading.Thread(target=poll)

        def on_field(event):
            self.last_event = event  # MOR006: radio thread writes field

        self.port.add_field_listener(on_field)

    def wire_handover(self):
        def responder(request, sender):
            self.peer = sender  # MOR006: requesting peer's thread
            return None

        self.adapter.set_handover_responder(responder)
