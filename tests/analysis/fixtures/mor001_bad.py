"""Fixture: blocking calls inside listener bodies (MOR001 flags these)."""

import time


class SlowActivity:
    def when_discovered(self, thing):
        time.sleep(0.5)  # MOR001: blocks the looper
        self.toast(thing.name)

    def on_tag_detected(self, reference):
        future = reference.read_future()
        value = future.result()  # MOR001: future wait on the looper
        self.toast(value)

    def when_discovered_empty(self, empty):
        with open("/tmp/log.txt") as handle:  # MOR001: sync file I/O
            handle.read()

    def save(self, thing):
        thing.save_async(
            on_saved=lambda t: self.worker_thread.join()  # MOR001 via inline listener
        )
