"""MOR008 clean fixture: halts that never precede a use on any path."""


def halt_last(ref, payload):
    ref.write(payload)
    ref.stop()  # ok: nothing follows


def rebound(ref, port, payload):
    ref.stop()
    ref = port.reference()  # rebinding kills the halted state
    ref.write(payload)


def branch_separated(ref, payload, done):
    if done:
        ref.stop()
    else:
        ref.write(payload)  # ok: the halt is on the other branch


def reacquired(tag_lease, payload):
    tag_lease.release()
    tag_lease.acquire(30.0)  # re-acquiring clears the released state
    tag_lease.renew(30.0)


def observe(reference):
    # A helper that merely *reads* its parameter has no halt effect.
    return reference.cached


def non_halting_helper(ref):
    observe(ref)
    ref.read()  # ok: observe() halts nothing
