"""Fixture: the await-native style MOR007 wants (no findings)."""

import asyncio
import time


class PromptKiosk:
    async def checkout(self, ref):
        await asyncio.sleep(0.5)  # awaited: yields to the loop
        cart = await ref.aio.read()
        cart.paid = True
        await ref.aio.write(cart)
        return cart

    async def watch(self, discoverer):
        async for ref in discoverer.stream():
            value = await ref.aio.read()
            self.greet(value)

    async def timed(self, future):
        # Awaited waits are the non-blocking spelling.
        return await asyncio.wait_for(future, timeout=2.0)

    def background_job(self):
        # Not a coroutine: blocking is this method's own business.
        time.sleep(0.1)

    async def helper_escapes(self):
        def sync_helper():
            # Nested sync function: runs whenever *it* is called,
            # e.g. handed to an executor -- not this coroutine's body.
            time.sleep(0.1)

        await asyncio.get_running_loop().run_in_executor(None, sync_helper)
