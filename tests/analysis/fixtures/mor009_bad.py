"""MOR009 bad fixture: leases acquired but not released on every path."""


def early_return_leak(tag, skip):
    lease_manager = make_manager(tag)
    lease_manager.acquire(30.0)  # flagged: the skip path never releases
    if skip:
        return None
    lease_manager.release()
    return True


def exception_path_leak(tag, payload):
    lease_manager = make_manager(tag)
    lease_manager.acquire(30.0)  # flagged: write() may raise before release
    tag.write(payload)
    lease_manager.release()


def never_released(tag):
    lease_manager = make_manager(tag)
    lease_manager.acquire(30.0)  # flagged: no release anywhere
    tag.write(b"payload")


def callback_does_not_balance(tag, log):
    lease_manager = make_manager(tag)
    # flagged: the resolvable callback neither releases nor renews
    lease_manager.acquire(30.0, on_acquired=lambda lease: log.append(lease))
    tag.write(b"payload")
