"""Fixture: off-looper callbacks that hop or lock correctly (no MOR006)."""

import threading


class CarefulActivity:
    def on_create(self):
        self.count = 0
        self._lock = threading.Lock()
        app = self

        def poll():
            # Mutation hops onto the looper: the listener reading the
            # field runs there too, so there is no race.
            app.device.main_looper.post(lambda: app.note())

        self.worker = threading.Thread(target=poll)

        def on_field(event):
            with self._lock:
                self.events_seen = event  # explicit lock: accepted

        self.port.add_field_listener(on_field)

    def note(self):
        self.count += 1  # runs on the looper (posted above)

    def when_discovered(self, thing):
        self.count += 1  # listener method: already on the looper
