"""MOR011 clean fixture: consistent locking, or no concurrency at all."""

import threading


class ConsistentActivity:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def on_tag_detected(self, tag):
        with self._lock:
            self.count = self.count + 1  # same discipline everywhere

    def recompute(self):
        with self._lock:
            self.count = 0


class NeverLocked:
    # No method ever locks, so no discipline exists to violate: this
    # class's thread-safety is somebody else's problem (MOR006's, say).
    def on_tag_detected(self, tag):
        self.count = self.count + 1


class MaintenanceOnly:
    def __init__(self):
        self.cache_lock = threading.Lock()
        self.cache = {}

    def locked_path(self):
        with self.cache_lock:
            self.cache = {}

    def rebuild(self):
        # Bare write, but rebuild() is not reachable from any listener /
        # thread-target / coroutine entry point: the flow-aware engine
        # suppresses what a purely syntactic check would flag.
        self.cache = {}
