"""Fixture: coalescing used where it is safe (no MOR005)."""


class CounterApp:
    def bump(self, reference, record):
        # Idempotent application state: tail-merge away, that is the point.
        reference.write(
            record,
            on_written=lambda r: self.toast("saved"),
            on_failed=lambda r: self.toast("failed"),
            coalesce=True,
        )

    def push_raw(self, reference, message):
        # Raw write without the flag: the layer refuses to merge anyway.
        reference.write_raw(
            message,
            on_written=lambda r: None,
            on_failed=lambda r: None,
        )

    def renew(self, lease_reference, record):
        # Lease write without coalescing: each renewal lands under guard.
        lease_reference.write(
            record,
            on_written=lambda r: None,
            on_failed=lambda r: None,
            coalesce=False,
        )

    def renew_raw(self, reference, message):
        # The sanctioned protocol merge hook: the protocol layer itself
        # declares these raw writes equivalent-up-to-latest.
        reference.write_raw(
            message,
            on_written=lambda r: None,
            on_failed=lambda r: None,
            merge_key="lease-renew:phone-a",
        )
