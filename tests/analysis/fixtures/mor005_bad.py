"""Fixture: coalesce=True where the guard protocol forbids it (MOR005)."""


class LeaseApp:
    def renew(self, lease_reference, record):
        lease_reference.write(  # MOR005: lease receiver + coalesce
            record,
            on_written=lambda r: self.toast("renewed"),
            on_failed=lambda r: self.toast("renewal failed"),
            coalesce=True,
        )

    def push_raw(self, reference, message):
        reference.write_raw(  # MOR005: raw writes never coalesce
            message,
            on_written=lambda r: None,
            on_failed=lambda r: None,
            coalesce=True,
        )

    def lock(self, reference):
        reference.make_read_only(  # MOR005: state change, not content
            on_locked=lambda r: None,
            on_failed=lambda r: None,
            coalesce=True,
        )

    def renew_converted(self, reference, record):
        reference.write(  # MOR005: merge hook only exists on write_raw
            record,
            on_written=lambda r: None,
            on_failed=lambda r: None,
            merge_key="lease-renew:phone-a",
        )
