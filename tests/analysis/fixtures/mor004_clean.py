"""Fixture: adapters registered in one-time configuration (no MOR004)."""

from repro.gson import Gson


class ConfiguredActivity:
    def make_gson(self):
        gson = Gson()
        gson.register_adapter(MoneyAdapter())  # one-time setup: fine
        return gson

    def when_discovered(self, thing):
        thing.save_async(
            on_saved=lambda t: self.toast("ok"),
            on_failed=lambda t: self.toast("failed"),
        )


class MoneyAdapter:
    pass
