"""Fixture: paired or fire-and-forget listener usage (no MOR002)."""


class PairedActivity:
    def when_discovered(self, thing):
        thing.save_async(
            on_saved=lambda t: self.toast("saved"),
            on_failed=lambda t: self.toast("save failed"),
        )

    def when_discovered_empty(self, empty):
        empty.initialize(
            self.pending,
            on_saved=lambda t: self.toast("labelled"),
            on_save_failed=lambda: self.toast("labelling failed"),
        )

    def share(self, thing):
        # Fire-and-forget (no listeners at all) is a deliberate style,
        # not an unpaired registration.
        thing.broadcast()

    def peek(self, reference):
        reference.read(
            on_read=lambda r: self.show(r.cached),
            on_failed=lambda r: self.show(None),
        )

    def lock_down(self, port, tag):
        # Same method name on a synchronous internal API: the positional
        # argument is a payload, not a listener.
        port.make_read_only(tag.simulated)
