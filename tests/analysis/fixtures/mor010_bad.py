"""MOR010 bad fixture: reads racing unfenced coalesced writes."""


def read_after_coalesced(ref, payload):
    ref.write(payload, coalesce=True)
    return ref.read()  # flagged: the write may still sit in the queue


def save_then_refresh(thing_ref):
    thing_ref.save_async()  # coalesces by default
    thing_ref.refresh_async()  # flagged: refresh races the queued save


def branch_hazard(ref, payload, fast):
    if fast:
        ref.write(payload, coalesce=True)
    data = ref.read()  # flagged: hazard on the fast branch
    return data


def raw_read_hazard(ref, payload):
    ref.write(payload, coalesce=True)
    return ref.read_raw()  # flagged: raw reads race the merge queue too
