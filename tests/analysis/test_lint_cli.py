"""The morelint CLI: exit codes, formats, baselines, and the repo gate."""

import json
import pathlib
import shutil

import pytest

from repro.analysis.engine import collect_files, lint_paths, resolve_jobs
from repro.analysis.lint import main as lint_main
from repro.cli import main as cli_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert lint_main([str(FIXTURES / "mor001_clean.py")]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_error_finding_exits_one(self, capsys):
        assert lint_main([str(FIXTURES / "mor001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "MOR001" in out

    def test_warning_only_exits_zero(self, capsys):
        # Select only MOR002 on a file whose sole finding is reference-level.
        source = FIXTURES / "warn_only.py"
        source.write_text(
            "def peek(reference):\n"
            "    reference.read(on_read=lambda r: print(r.cached))\n"
        )
        try:
            assert lint_main(["--select", "MOR002", str(source)]) == 0
            out = capsys.readouterr().out
            assert "WARNING MOR002" in out
        finally:
            source.unlink()

    def test_no_paths_exits_two(self, capsys):
        assert lint_main([]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("MOR001", "MOR006"):
            assert rule_id in out


class TestSelection:
    def test_select_limits_rules(self, capsys):
        assert lint_main(
            ["--select", "MOR004", str(FIXTURES / "mor001_bad.py")]
        ) == 0  # MOR001 findings masked out
        assert "MOR001" not in capsys.readouterr().out

    def test_hints_shown_by_default_and_suppressible(self, capsys):
        lint_main([str(FIXTURES / "mor004_bad.py")])
        assert "fix:" in capsys.readouterr().out
        lint_main(["--no-hints", str(FIXTURES / "mor004_bad.py")])
        assert "fix:" not in capsys.readouterr().out


class TestReproCliIntegration:
    def test_lint_subcommand_wired(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "MOR001" in capsys.readouterr().out

    def test_lint_subcommand_flags(self, capsys):
        assert cli_main(["lint", str(FIXTURES / "mor002_bad.py")]) == 1


class TestFormats:
    def test_json_rendering_is_valid_and_complete(self, capsys):
        assert lint_main(
            ["--format", "json", str(FIXTURES / "mor001_bad.py")]
        ) == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is pure JSON
        assert payload["tool"] == "morelint"
        assert payload["summary"]["errors"] >= 1
        assert payload["findings"]
        assert all("rule" in f and "line" in f for f in payload["findings"])
        # The human summary moves to stderr so stdout stays parseable.
        assert "morelint:" in captured.err

    def test_sarif_rendering_is_valid_2_1_0(self, capsys):
        assert lint_main(
            ["--format", "sarif", str(FIXTURES / "mor001_bad.py")]
        ) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"MOR001", "MOR008", "MOR012"} <= rules
        assert run["results"]
        for result in run["results"]:
            assert result["ruleId"] in rules
            location = result["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert result["baselineState"] == "new"

    def test_output_file_keeps_text_on_stdout(self, tmp_path, capsys):
        out_file = tmp_path / "morelint.sarif"
        lint_main(
            [
                "--format",
                "sarif",
                "--output",
                str(out_file),
                str(FIXTURES / "mor001_bad.py"),
            ]
        )
        sarif = json.loads(out_file.read_text())
        assert sarif["version"] == "2.1.0"
        out = capsys.readouterr().out
        assert "MOR001" in out  # the human-readable report survives
        assert "morelint:" in out  # ... summary included


class TestBaseline:
    def _bad_copy(self, tmp_path):
        target = tmp_path / "app.py"
        shutil.copy(FIXTURES / "mor001_bad.py", target)
        return target

    def test_write_then_lint_with_baseline_passes(self, tmp_path, capsys):
        target = self._bad_copy(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            ["--baseline", str(baseline), "--write-baseline", str(target)]
        ) == 0
        assert lint_main(["--baseline", str(baseline), str(target)]) == 0
        captured = capsys.readouterr()
        assert "baselined error(s) accepted" in captured.out

    def test_new_error_still_fails_a_baselined_run(self, tmp_path, capsys):
        target = self._bad_copy(tmp_path)
        baseline = tmp_path / "baseline.json"
        lint_main(["--baseline", str(baseline), "--write-baseline", str(target)])
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(
                "\n\nclass FreshActivity:\n"
                "    def on_tag_lost(self, reference):\n"
                "        import time\n"
                "        time.sleep(1.0)\n"
            )
        assert lint_main(["--baseline", str(baseline), str(target)]) == 1

    def test_missing_baseline_file_means_everything_is_new(
        self, tmp_path, capsys
    ):
        target = self._bad_copy(tmp_path)
        assert lint_main(
            ["--baseline", str(tmp_path / "absent.json"), str(target)]
        ) == 1

    def test_sarif_marks_baselined_results_unchanged(self, tmp_path, capsys):
        target = self._bad_copy(tmp_path)
        baseline = tmp_path / "baseline.json"
        lint_main(["--baseline", str(baseline), "--write-baseline", str(target)])
        capsys.readouterr()
        lint_main(
            ["--baseline", str(baseline), "--format", "sarif", str(target)]
        )
        sarif = json.loads(capsys.readouterr().out)
        states = {r["baselineState"] for r in sarif["runs"][0]["results"]}
        assert states == {"unchanged"}


class TestPragmas:
    def test_line_pragma_suppresses_the_finding(self, tmp_path, capsys):
        source = tmp_path / "app.py"
        source.write_text(
            "import time\n"
            "\n"
            "class A:\n"
            "    def on_tag_detected(self, reference):\n"
            "        time.sleep(0.5)  # morelint: disable=MOR001\n"
        )
        assert lint_main([str(source)]) == 0
        assert "MOR001" not in capsys.readouterr().out

    def test_file_pragma_suppresses_everywhere(self, tmp_path, capsys):
        source = tmp_path / "app.py"
        source.write_text(
            "# morelint: disable-file=MOR001\n"
            "import time\n"
            "\n"
            "class A:\n"
            "    def on_tag_detected(self, reference):\n"
            "        time.sleep(0.5)\n"
            "\n"
            "    def on_tag_lost(self, reference):\n"
            "        time.sleep(0.5)\n"
        )
        assert lint_main([str(source)]) == 0

    def test_pragma_only_masks_the_named_rule(self, tmp_path, capsys):
        source = tmp_path / "app.py"
        source.write_text(
            "import time\n"
            "\n"
            "class A:\n"
            "    def on_tag_detected(self, reference):\n"
            "        time.sleep(0.5)  # morelint: disable=MOR005\n"
        )
        assert lint_main([str(source)]) == 1


class TestParallel:
    def test_jobs_resolution(self):
        assert resolve_jobs("2", 100) == 2
        assert resolve_jobs("auto", 3) == 1  # small batch stays serial
        assert resolve_jobs("auto", 500) >= 1

    def test_parallel_findings_match_serial(self):
        paths = [str(FIXTURES)]
        serial = lint_paths(paths, jobs="1")
        parallel = lint_paths(paths, jobs="2")
        assert [
            (f.path, f.line, f.rule_id, f.message) for f in serial
        ] == [(f.path, f.line, f.rule_id, f.message) for f in parallel]
        assert serial  # the corpus is not accidentally empty

    def test_cli_accepts_jobs_flag(self, capsys):
        assert lint_main(
            ["--jobs", "2", str(FIXTURES / "mor001_clean.py")]
        ) == 0


class TestCollectFiles:
    def test_directories_walked_sorted_py_only(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "a.cpython-311.pyc").write_text("")
        files = collect_files([str(tmp_path)])
        assert [pathlib.Path(f).name for f in files] == ["a.py", "b.py"]


class TestRepoIsLintClean:
    """The acceptance gate: zero error-severity findings over the repo's
    own source, examples, and benchmarks (mirrors the CI lint job)."""

    def test_repo_sources_have_no_error_findings(self, capsys):
        paths = [
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "examples"),
            str(REPO_ROOT / "benchmarks"),
        ]
        exit_code = lint_main(paths)
        out = capsys.readouterr().out
        assert exit_code == 0, f"error-severity findings:\n{out}"
