"""The morelint CLI: exit codes, selection, and the repo-wide gate."""

import pathlib

import pytest

from repro.analysis.engine import collect_files
from repro.analysis.lint import main as lint_main
from repro.cli import main as cli_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert lint_main([str(FIXTURES / "mor001_clean.py")]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_error_finding_exits_one(self, capsys):
        assert lint_main([str(FIXTURES / "mor001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "MOR001" in out

    def test_warning_only_exits_zero(self, capsys):
        # Select only MOR002 on a file whose sole finding is reference-level.
        source = FIXTURES / "warn_only.py"
        source.write_text(
            "def peek(reference):\n"
            "    reference.read(on_read=lambda r: print(r.cached))\n"
        )
        try:
            assert lint_main(["--select", "MOR002", str(source)]) == 0
            out = capsys.readouterr().out
            assert "WARNING MOR002" in out
        finally:
            source.unlink()

    def test_no_paths_exits_two(self, capsys):
        assert lint_main([]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("MOR001", "MOR006"):
            assert rule_id in out


class TestSelection:
    def test_select_limits_rules(self, capsys):
        assert lint_main(
            ["--select", "MOR004", str(FIXTURES / "mor001_bad.py")]
        ) == 0  # MOR001 findings masked out
        assert "MOR001" not in capsys.readouterr().out

    def test_hints_shown_by_default_and_suppressible(self, capsys):
        lint_main([str(FIXTURES / "mor004_bad.py")])
        assert "fix:" in capsys.readouterr().out
        lint_main(["--no-hints", str(FIXTURES / "mor004_bad.py")])
        assert "fix:" not in capsys.readouterr().out


class TestReproCliIntegration:
    def test_lint_subcommand_wired(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "MOR001" in capsys.readouterr().out

    def test_lint_subcommand_flags(self, capsys):
        assert cli_main(["lint", str(FIXTURES / "mor002_bad.py")]) == 1


class TestCollectFiles:
    def test_directories_walked_sorted_py_only(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "a.cpython-311.pyc").write_text("")
        files = collect_files([str(tmp_path)])
        assert [pathlib.Path(f).name for f in files] == ["a.py", "b.py"]


class TestRepoIsLintClean:
    """The acceptance gate: zero error-severity findings over the repo's
    own source, examples, and benchmarks (mirrors the CI lint job)."""

    def test_repo_sources_have_no_error_findings(self, capsys):
        paths = [
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "examples"),
            str(REPO_ROOT / "benchmarks"),
        ]
        exit_code = lint_main(paths)
        out = capsys.readouterr().out
        assert exit_code == 0, f"error-severity findings:\n{out}"
