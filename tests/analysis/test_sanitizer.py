"""The runtime thread-affinity sanitizer: seeded violations and clean runs.

The seeded cases use the *real* middleware machinery -- a step executed
on a reactor worker, a listener forced off its looper -- so the tests
exercise the same code paths a buggy application or middleware
regression would.
"""

import asyncio
import threading

import pytest

from repro.analysis import sanitizer as sanitizer_mod
from repro.analysis.sanitizer import AffinityViolationError
from repro.concurrent import EventLog
from repro.core.futures import read_future
from repro.tags.factory import make_tag
from repro.things.activity import ThingActivity
from repro.things.thing import Thing

from tests.conftest import make_reference, text_tag


class Crate(Thing):
    label: str

    def __init__(self, activity, label="crate"):
        super().__init__(activity)
        self.label = label


class CrateActivity(ThingActivity):
    THING_CLASS = Crate

    def on_create(self):
        self.discovered = EventLog()
        self.empties = EventLog()

    def when_discovered(self, thing):
        self.discovered.append(thing)

    def when_discovered_empty(self, empty):
        self.empties.append(empty)


@pytest.fixture
def san():
    """An installed sanitizer; seeded violations are drained afterwards
    so the session-level affinity guard never sees them."""
    pre_existing = sanitizer_mod.current()
    active = sanitizer_mod.install()
    before = len(active.violations)
    yield active
    active.strict = False
    active.drain(before)
    if pre_existing is None:
        sanitizer_mod.uninstall()


@pytest.fixture
def bound_crate(scenario):
    phone = scenario.add_phone("san-phone")
    app = scenario.start(phone, CrateActivity)
    tag = make_tag()
    scenario.put(tag, phone)
    assert app.empties.wait_for_count(1)
    crate = Crate(app, label="sealed")
    saved = EventLog()
    app.empties.snapshot()[0].initialize(
        crate,
        on_saved=lambda t: saved.append(t),
        on_save_failed=lambda: saved.append(None),
    )
    assert saved.wait_for_count(1)
    assert saved.snapshot()[0] is not None
    return app, crate


def _run_on_reactor(app, fn):
    """Execute ``fn`` on one of the device's real reactor workers."""
    done = threading.Event()

    def step():
        try:
            fn()
        finally:
            done.set()
        return None

    task = app.device.reactor.register(step, name="seeded-step")
    task.wake()
    assert done.wait(5)
    task.cancel()


class TestOffLooperMutation:
    def test_catches_reactor_worker_mutating_bound_thing(self, san, bound_crate):
        app, crate = bound_crate
        before = len(san.violations)
        _run_on_reactor(app, lambda: setattr(crate, "label", "tampered"))
        fresh = san.violations[before:]
        assert any(v.kind == "off-looper-mutation" for v in fresh)
        violation = next(v for v in fresh if v.kind == "off-looper-mutation")
        assert violation.subject == "Crate.label"
        assert violation.owner == app.device.main_looper.name
        assert "-worker-" in violation.thread_name
        # Record-only mode still applies the write.
        assert crate.label == "tampered"

    def test_external_thread_is_allowed(self, san, bound_crate):
        _app, crate = bound_crate
        before = len(san.violations)
        crate.label = "updated-by-the-ui"  # the test thread is the "UI"
        assert san.violations[before:] == []

    def test_unbound_thing_is_freely_mutable(self, san, scenario):
        phone = scenario.add_phone("san-unbound")
        app = scenario.start(phone, CrateActivity)
        unbound = Crate(app)
        before = len(san.violations)
        _run_on_reactor(app, lambda: setattr(unbound, "label", "revived"))
        assert san.violations[before:] == []
        assert unbound.label == "revived"

    def test_private_fields_are_exempt(self, san, bound_crate):
        app, crate = bound_crate
        before = len(san.violations)
        _run_on_reactor(app, lambda: setattr(crate, "_scratch", 1))
        assert san.violations[before:] == []

    def test_listener_on_looper_is_allowed(self, san, bound_crate):
        app, crate = bound_crate
        before = len(san.violations)
        settled = EventLog()
        crate.label = "renamed"
        crate.save_async(
            on_saved=lambda t: settled.append(t),
            on_failed=lambda: settled.append(None),
        )
        assert settled.wait_for_count(1)
        assert san.violations[before:] == []


class _InlineLooper:
    """A broken looper that runs posts on the caller's thread -- the
    middleware bug the listener guard exists to catch."""

    name = "inline-looper"
    is_current_thread = False

    def post(self, runnable):
        runnable()


class TestListenerAffinity:
    def test_catches_listener_executing_off_looper(
        self, san, scenario, phone, activity
    ):
        reference = make_reference(activity, text_tag("x"), phone)
        reference._looper = _InlineLooper()
        before = len(san.violations)
        delivered = []
        reference._post_listener(delivered.append, reference)
        assert delivered == [reference]
        fresh = san.violations[before:]
        assert any(v.kind == "listener-off-looper" for v in fresh)
        assert fresh[0].owner == "inline-looper"

    def test_normal_listener_dispatch_is_clean(
        self, san, scenario, phone, activity
    ):
        tag = text_tag("hello")
        reference = make_reference(activity, tag, phone)
        scenario.put(tag, phone)
        before = len(san.violations)
        read = EventLog()
        reference.read(
            on_read=lambda r: read.append(r.cached),
            on_failed=lambda r: read.append(None),
            timeout=5.0,
        )
        assert read.wait_for_count(1)
        assert read.snapshot() == ["hello"]
        assert san.violations[before:] == []


class TestEventLoopAffinity:
    """The asyncio half of the contract: blocking waits inside a running
    event loop, and the asyncio reactor's loop thread as middleware."""

    def test_future_result_inside_running_loop_is_flagged(
        self, san, scenario, phone, activity
    ):
        tag = text_tag("hello")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        before = len(san.violations)

        async def blocking_wait():
            future = read_future(reference)
            return future.result(timeout=5.0)  # blocks the loop

        value = asyncio.run(blocking_wait())
        assert value == "hello"  # record-only: the wait still completes
        fresh = [
            v for v in san.violations[before:] if v.kind == "blocking-on-loop"
        ]
        assert fresh
        assert fresh[0].subject == "OperationFuture.result"
        assert "event loop" in str(fresh[0])

    def test_looper_sync_inside_running_loop_is_flagged(self, san, phone):
        before = len(san.violations)

        async def blocking_sync():
            return phone.main_looper.sync(timeout=5.0)

        assert asyncio.run(blocking_sync())
        fresh = [
            v for v in san.violations[before:] if v.kind == "blocking-on-loop"
        ]
        assert fresh
        assert fresh[0].subject == "Looper.sync"

    def test_blocking_off_loop_is_clean(self, san, scenario, phone, activity):
        tag = text_tag("offloop")
        scenario.put(tag, phone)
        reference = make_reference(activity, tag, phone)
        before = len(san.violations)
        assert read_future(reference).result(timeout=5.0) == "offloop"
        assert phone.main_looper.sync(timeout=5.0)
        assert san.violations[before:] == []

    def test_asyncio_loop_thread_registers_as_middleware(self, san, scenario):
        phone = scenario.add_phone("san-aio", reactor_mode="asyncio")
        app = scenario.start(phone, CrateActivity)
        seen = []
        _run_on_reactor(app, lambda: seen.append(san.is_middleware_thread()))
        assert seen == [True]

    def test_catches_asyncio_step_mutating_bound_thing(self, san, scenario):
        phone = scenario.add_phone("san-aio-mut", reactor_mode="asyncio")
        app = scenario.start(phone, CrateActivity)
        tag = make_tag()
        scenario.put(tag, phone)
        assert app.empties.wait_for_count(1)
        crate = Crate(app, label="sealed")
        saved = EventLog()
        app.empties.snapshot()[0].initialize(
            crate,
            on_saved=lambda t: saved.append(t),
            on_save_failed=lambda: saved.append(None),
        )
        assert saved.wait_for_count(1)
        assert saved.snapshot()[0] is not None
        before = len(san.violations)
        _run_on_reactor(app, lambda: setattr(crate, "label", "tampered"))
        fresh = san.violations[before:]
        violation = next(
            v for v in fresh if v.kind == "off-looper-mutation"
        )
        assert violation.subject == "Crate.label"
        assert violation.thread_name.endswith("-aioloop")


class TestStrictMode:
    def test_strict_raises_at_the_violation_point(self, san, bound_crate):
        app, crate = bound_crate
        san.strict = True
        raised = []

        def mutate():
            try:
                crate.label = "strict-tamper"
            except AffinityViolationError as exc:
                raised.append(exc)

        _run_on_reactor(app, mutate)
        assert len(raised) == 1
        assert "Crate.label" in str(raised[0])


class _SharedCounter:
    """A plain object with a lock-smelling field for lockset tests."""

    def __init__(self):
        self.state_lock = threading.Lock()
        self.total = 0


def _hammer(counter, writes, locked):
    barrier = threading.Barrier(2)

    def unlocked_writer():
        barrier.wait()
        for _ in range(writes):
            counter.total = counter.total + 1

    def locked_writer():
        barrier.wait()
        for _ in range(writes):
            with counter.state_lock:
                counter.total = counter.total + 1

    worker = locked_writer if locked else unlocked_writer
    threads = [
        threading.Thread(target=worker, name=f"lockset-{i}") for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)


class TestLockset:
    """The runtime mirror of morelint rule MOR011."""

    def test_two_threads_without_the_lock_are_flagged_once(self, san):
        counter = san.lockset.watch(_SharedCounter())
        before = len(san.violations)
        try:
            _hammer(counter, writes=50, locked=False)
        finally:
            san.lockset.unwatch_all()
        fresh = [
            v
            for v in san.violations[before:]
            if v.kind == "unlocked-shared-write"
        ]
        # One report per field, not one per racy write.
        assert len(fresh) == 1
        assert fresh[0].subject == "_SharedCounter.total"
        assert "lockset" in str(fresh[0]) or "lock" in str(fresh[0])

    def test_consistent_locking_is_silent_and_correct(self, san):
        counter = san.lockset.watch(_SharedCounter())
        before = len(san.violations)
        try:
            _hammer(counter, writes=50, locked=True)
        finally:
            san.lockset.unwatch_all()
        assert [
            v
            for v in san.violations[before:]
            if v.kind == "unlocked-shared-write"
        ] == []
        assert counter.total == 100

    def test_single_thread_initialization_is_exclusive(self, san):
        counter = san.lockset.watch(_SharedCounter())
        before = len(san.violations)
        try:
            for _ in range(10):
                counter.total = counter.total + 1  # no lock, but one thread
        finally:
            san.lockset.unwatch_all()
        assert san.violations[before:] == []

    def test_unwatch_restores_setattr(self, san):
        counter = san.lockset.watch(_SharedCounter())
        assert "__setattr__" in _SharedCounter.__dict__
        san.lockset.unwatch_all()
        assert "__setattr__" not in _SharedCounter.__dict__
        counter.total = 99  # plain write, no tracking
        assert counter.total == 99

    def test_tracked_lock_still_behaves_like_a_lock(self, san):
        counter = san.lockset.watch(_SharedCounter())
        try:
            assert counter.state_lock.acquire(blocking=False)
            assert not counter.state_lock.acquire(blocking=False)
            counter.state_lock.release()
            with counter.state_lock:
                pass
        finally:
            san.lockset.unwatch_all()


class TestLifecycle:
    def test_install_is_idempotent(self, san):
        assert sanitizer_mod.install() is san

    def test_double_install_does_not_double_wrap(self, san):
        first = Thing.__dict__.get("__setattr__")
        assert sanitizer_mod.install() is san
        assert Thing.__dict__.get("__setattr__") is first

    def test_repeated_uninstall_is_safe(self):
        if sanitizer_mod.current() is not None:
            pytest.skip("session-level sanitizer active (MORENA_SANITIZER)")
        pristine = "__setattr__" not in Thing.__dict__
        sanitizer_mod.install()
        sanitizer_mod.install()  # second install is a no-op
        sanitizer_mod.uninstall()
        if pristine:
            assert "__setattr__" not in Thing.__dict__
        sanitizer_mod.uninstall()  # idempotent: nothing left to undo
        assert sanitizer_mod.current() is None

    def test_report_formats_violations(self, san, bound_crate):
        app, crate = bound_crate
        before = len(san.violations)
        _run_on_reactor(app, lambda: setattr(crate, "label", "reported"))
        report = san.format_report()
        assert "violation" in report
        assert "Crate.label" in report
        san.drain(before)
        # Drained: the report goes back to clean (session guard relies on this).
        if not san.violations:
            assert san.format_report() == (
                "thread-affinity sanitizer: no violations"
            )

    def test_uninstall_restores_the_middleware(self):
        if sanitizer_mod.current() is not None:
            pytest.skip("session-level sanitizer active (MORENA_SANITIZER)")
        sanitizer_mod.install()
        assert "__setattr__" in Thing.__dict__
        sanitizer_mod.uninstall()
        assert "__setattr__" not in Thing.__dict__
        assert sanitizer_mod.current() is None

    def test_env_opt_in(self, monkeypatch):
        if sanitizer_mod.current() is not None:
            pytest.skip("session-level sanitizer active (MORENA_SANITIZER)")
        monkeypatch.setenv("MORENA_SANITIZER", "0")
        assert sanitizer_mod.install_from_env() is None
        monkeypatch.setenv("MORENA_SANITIZER", "strict")
        active = sanitizer_mod.install_from_env()
        try:
            assert active is not None and active.strict
        finally:
            sanitizer_mod.uninstall()
